"""Turn experiment results into a markdown report.

``python -m repro run-experiments`` (see :mod:`repro.cli`) uses this module
to run any subset of the per-figure experiments and emit a markdown document
with one series table per experiment — the raw material behind
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.bench.harness import ExperimentResult


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section with a table."""
    headers = ["method", result.x_label, *result.metric_labels]
    lines = [
        f"### {result.experiment} — {result.description}",
        "",
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(["---"] * len(headers)) + "|",
    ]
    for row in result.rows:
        cells = []
        for header in headers:
            value = row.get(header, "")
            cells.append(f"{value:.4f}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def run_experiments(experiments: Dict[str, Callable[[], ExperimentResult]],
                    only: Optional[Sequence[str]] = None,
                    progress: Optional[Callable[[str, float], None]] = None
                    ) -> List[ExperimentResult]:
    """Run the selected experiments, reporting per-experiment wall time."""
    selected = list(only) if only else list(experiments)
    unknown = [name for name in selected if name not in experiments]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    results: List[ExperimentResult] = []
    for name in selected:
        start = time.perf_counter()
        results.append(experiments[name]())
        if progress is not None:
            progress(name, time.perf_counter() - start)
    return results


def build_report(results: Iterable[ExperimentResult], title: str = "Experiment report"
                 ) -> str:
    """Assemble a complete markdown report."""
    sections = [f"# {title}", ""]
    sections.extend(result_to_markdown(result) for result in results)
    return "\n".join(sections)
