"""Benchmark harness shared by every per-figure experiment.

Each experiment function in ``repro.bench.ch*`` builds its datasets and
structures, sweeps the parameter the corresponding paper figure varies, and
returns an :class:`ExperimentResult` — a list of rows with one entry per
(method, x-value) pair, carrying the metrics the paper plots (execution
time, disk accesses, states generated, peak heap size, or sizes).  The
``benchmarks/`` directory contains one pytest-benchmark target per figure
that runs the experiment and prints its table.

Scaling: the paper uses 1M–10M tuple datasets; by default the experiments
run at laptop scale (a few tens of thousands of tuples) so the whole suite
finishes in minutes.  Set ``REPRO_BENCH_SCALE=paper`` for larger sizes —
the relative ordering of methods (the reproduced "shape") is unchanged.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

#: Environment variable selecting the benchmark scale.
SCALE_ENV = "REPRO_BENCH_SCALE"


def bench_scale() -> str:
    """Current scale: ``small`` (default) or ``paper``."""
    value = os.environ.get(SCALE_ENV, "small").lower()
    return "paper" if value == "paper" else "small"


def scaled(small: int, paper: int) -> int:
    """Pick a size according to the current scale."""
    return paper if bench_scale() == "paper" else small


@dataclass
class ExperimentResult:
    """Rows of one experiment, ready to print as the paper's figure series."""

    experiment: str
    description: str
    x_label: str
    metric_labels: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, method: str, x: object, **metrics: float) -> None:
        """Append one measured point."""
        row: Dict[str, object] = {"method": method, self.x_label: x}
        row.update(metrics)
        self.rows.append(row)

    def methods(self) -> List[str]:
        """Distinct methods in insertion order."""
        seen: List[str] = []
        for row in self.rows:
            if row["method"] not in seen:
                seen.append(str(row["method"]))
        return seen

    def series(self, method: str, metric: str) -> List[tuple]:
        """``(x, value)`` points of one method for one metric."""
        return [
            (row[self.x_label], row.get(metric))
            for row in self.rows
            if row["method"] == method and metric in row
        ]

    def format_table(self) -> str:
        """Human-readable table of every row (printed by the bench targets)."""
        headers = ["method", self.x_label, *self.metric_labels]
        widths = {h: max(len(h), 12) for h in headers}
        lines = [
            f"# {self.experiment}: {self.description}",
            " | ".join(h.ljust(widths[h]) for h in headers),
            "-+-".join("-" * widths[h] for h in headers),
        ]
        for row in self.rows:
            cells = []
            for header in headers:
                value = row.get(header, "")
                if isinstance(value, float):
                    text = f"{value:.4f}"
                else:
                    text = str(value)
                cells.append(text.ljust(widths[header]))
            lines.append(" | ".join(cells))
        return "\n".join(lines)

    def check_shape(self, better: str, worse: str, metric: str,
                    tolerance: float = 1.0) -> bool:
        """Whether ``better`` beats ``worse`` on ``metric`` in aggregate.

        Used by EXPERIMENTS.md generation and the bench smoke tests to record
        whether the paper's qualitative ordering holds.
        """
        better_total = sum(v for _, v in self.series(better, metric) if v is not None)
        worse_total = sum(v for _, v in self.series(worse, metric) if v is not None)
        return better_total <= worse_total * tolerance


def cold_buffers(*objects: object) -> None:
    """Invalidate the buffer pools of every known structure in ``objects``.

    Query-time disk-access counts are only comparable if every method starts
    from cold buffers; this walks the structures the experiments use and
    clears their pools.
    """
    for obj in objects:
        if obj is None:
            continue
        buffer = getattr(obj, "buffer", None)
        if buffer is not None and hasattr(buffer, "invalidate"):
            buffer.invalidate()
        # Signature cube: R-tree + signature store.
        for attribute in ("rtree", "store", "block_table"):
            inner = getattr(obj, attribute, None)
            if inner is not None and hasattr(inner, "buffer"):
                inner.buffer.invalidate()
        cuboids = getattr(obj, "cuboids", None)
        if isinstance(cuboids, dict):
            for cuboid in cuboids.values():
                if hasattr(cuboid, "buffer"):
                    cuboid.buffer.invalidate()
        signatures = getattr(obj, "signatures", None)
        if isinstance(signatures, dict):
            for signature in signatures.values():
                if hasattr(signature, "buffer"):
                    signature.buffer.invalidate()
        indexes = getattr(obj, "indexes", None)
        if isinstance(indexes, (list, tuple)):
            for index in indexes:
                if hasattr(index, "buffer"):
                    index.buffer.invalidate()


def timed(callable_: Callable[[], object]) -> tuple:
    """Run a callable, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def average(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty iterable)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
