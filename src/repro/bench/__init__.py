"""Benchmark harness: one experiment per paper figure/table.

``ALL_EXPERIMENTS`` maps experiment ids (``fig3.4`` ... ``fig7.13-14``,
``tab5.1``) to zero-argument callables returning an
:class:`repro.bench.harness.ExperimentResult`.  The ``benchmarks/``
directory wraps each entry in a pytest-benchmark target.
"""

from typing import Callable, Dict

from repro.bench import ch3, ch4, ch5, ch6, ch7
from repro.bench.harness import (
    ExperimentResult,
    average,
    bench_scale,
    cold_buffers,
    scaled,
    timed,
)

ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {}
for module in (ch3, ch4, ch5, ch6, ch7):
    ALL_EXPERIMENTS.update(module.EXPERIMENTS)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "average",
    "bench_scale",
    "cold_buffers",
    "scaled",
    "timed",
    "ch3",
    "ch4",
    "ch5",
    "ch6",
    "ch7",
]
