"""Dataset and structure builders shared by the benchmark experiments.

Building a ranking cube over tens of thousands of tuples takes a couple of
seconds; the builders below memoize on their parameters so that benchmark
files exercising the same configuration do not rebuild identical structures.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cube import RankingCube, build_ranking_fragments
from repro.signature import SignatureRankingCube
from repro.storage.bitmap import SelectionIndex
from repro.storage.btree import BPlusTree
from repro.storage.rtree import RTree
from repro.storage.table import Relation
from repro.workloads import SyntheticSpec, generate_relation, make_covertype_like


@lru_cache(maxsize=16)
def synthetic_relation(num_tuples: int, num_selection_dims: int, num_ranking_dims: int,
                       cardinality: int, distribution: str = "E",
                       seed: int = 7) -> Relation:
    """Memoized synthetic relation."""
    spec = SyntheticSpec(num_tuples=num_tuples, num_selection_dims=num_selection_dims,
                         num_ranking_dims=num_ranking_dims, cardinality=cardinality,
                         distribution=distribution, seed=seed)
    return generate_relation(spec)


@lru_cache(maxsize=4)
def covertype_relation(num_tuples: int, seed: int = 42) -> Relation:
    """Memoized CoverType-like surrogate."""
    return make_covertype_like(num_tuples=num_tuples, seed=seed)


_CUBE_CACHE: Dict[Tuple, object] = {}


def grid_cube(relation: Relation, block_size: int = 300) -> RankingCube:
    """Memoized grid ranking cube (full materialization)."""
    key = ("grid", id(relation), block_size)
    if key not in _CUBE_CACHE:
        _CUBE_CACHE[key] = RankingCube(relation, block_size=block_size)
    return _CUBE_CACHE[key]  # type: ignore[return-value]


def fragment_cube(relation: Relation, fragment_size: int = 2,
                  block_size: int = 300) -> RankingCube:
    """Memoized ranking-fragments cube."""
    key = ("fragments", id(relation), fragment_size, block_size)
    if key not in _CUBE_CACHE:
        _CUBE_CACHE[key] = build_ranking_fragments(
            relation, fragment_size=fragment_size, block_size=block_size)
    return _CUBE_CACHE[key]  # type: ignore[return-value]


def signature_cube(relation: Relation, rtree_max_entries: int = 32) -> SignatureRankingCube:
    """Memoized signature ranking cube with atomic cuboids."""
    key = ("signature", id(relation), rtree_max_entries)
    if key not in _CUBE_CACHE:
        _CUBE_CACHE[key] = SignatureRankingCube(
            relation, rtree_max_entries=rtree_max_entries)
    return _CUBE_CACHE[key]  # type: ignore[return-value]


def selection_index(relation: Relation) -> SelectionIndex:
    """Memoized per-dimension selection indexes."""
    key = ("selindex", id(relation))
    if key not in _CUBE_CACHE:
        _CUBE_CACHE[key] = SelectionIndex(relation)
    return _CUBE_CACHE[key]  # type: ignore[return-value]


def dimension_btree(relation: Relation, dim: str, fanout: int = 32) -> BPlusTree:
    """Memoized single-dimension B+-tree."""
    key = ("btree", id(relation), dim, fanout)
    if key not in _CUBE_CACHE:
        _CUBE_CACHE[key] = BPlusTree.build(dim, relation.ranking_column(dim),
                                           fanout=fanout)
    return _CUBE_CACHE[key]  # type: ignore[return-value]


def ranking_rtree(relation: Relation, dims: Optional[Sequence[str]] = None,
                  max_entries: int = 32) -> RTree:
    """Memoized R-tree over a subset of the ranking dimensions."""
    dims = tuple(dims) if dims else relation.ranking_dims
    key = ("rtree", id(relation), dims, max_entries)
    if key not in _CUBE_CACHE:
        points = relation.ranking_values_bulk(np.arange(relation.num_tuples), dims)
        _CUBE_CACHE[key] = RTree.build(dims, points, max_entries=max_entries)
    return _CUBE_CACHE[key]  # type: ignore[return-value]


def clear_cache() -> None:
    """Drop every memoized structure (used by tests)."""
    _CUBE_CACHE.clear()
    synthetic_relation.cache_clear()
    covertype_relation.cache_clear()
