"""Chapter 5 experiments: index merging (TS / BL / PE / PE+SIG)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import TableScanTopK
from repro.bench.datasets import (
    covertype_relation,
    dimension_btree,
    ranking_rtree,
    synthetic_relation,
)
from repro.bench.harness import ExperimentResult, average, cold_buffers, scaled
from repro.functions import (
    ConstrainedFunction,
    ExpressionFunction,
    LinearFunction,
    RankingFunction,
    SquaredDistanceFunction,
    Var,
)
from repro.indexmerge import (
    MODE_BASELINE,
    MODE_PROGRESSIVE,
    MODE_SELECTIVE,
    IndexMergeTopK,
    JoinSignatureSet,
)
from repro.query import Predicate, TopKQuery
from repro.storage.hierindex import HierarchicalIndex
from repro.storage.table import Relation

MERGE_METRICS = ("time_s", "disk", "states", "heap")


def _two_btrees(relation: Relation, fanout: int = 32):
    return [dimension_btree(relation, "N1", fanout), dimension_btree(relation, "N2", fanout)]


def _functions(seed: int = 3) -> Dict[str, RankingFunction]:
    rng = np.random.default_rng(seed)
    a, b = rng.random(2)
    lo = float(rng.uniform(0.2, 0.5))
    return {
        "fs": SquaredDistanceFunction(["N1", "N2"], [float(a), float(b)]),
        "fg": ExpressionFunction((Var("N1") - Var("N2") ** 2) ** 2),
        "fc": ConstrainedFunction(LinearFunction(["N1", "N2"], [1.0, 1.0]),
                                  "N2", lo, lo + 0.2),
    }


def _run_merge(result: ExperimentResult, x: object, relation: Relation,
               indexes: Sequence[HierarchicalIndex], function: RankingFunction, k: int,
               signatures: JoinSignatureSet,
               methods: Sequence[str] = ("TS", "BL", "PE", "PE+SIG"),
               extra_signatures: Optional[Dict[str, JoinSignatureSet]] = None) -> None:
    scan = TableScanTopK(relation)
    for method in methods:
        if method == "TS":
            outcome = scan.query(TopKQuery(Predicate.of(), function, k))
            result.add("TS", x, time_s=outcome.elapsed_seconds,
                       disk=float(outcome.disk_accesses), states=0.0, heap=0.0)
            continue
        if method == "BL":
            engine = IndexMergeTopK(indexes, mode=MODE_BASELINE)
        elif method == "PE":
            engine = IndexMergeTopK(indexes, mode=MODE_PROGRESSIVE)
        else:
            sigs = signatures
            if extra_signatures and method in extra_signatures:
                sigs = extra_signatures[method]
            engine = IndexMergeTopK(indexes, mode=MODE_SELECTIVE, join_signatures=sigs)
        for index in indexes:
            cold_buffers(index)
        outcome = engine.query(function, k)
        result.add(method, x, time_s=outcome.elapsed_seconds,
                   disk=float(outcome.disk_accesses),
                   states=float(outcome.states_generated),
                   heap=float(outcome.peak_heap_size))


def tab5_01_significance() -> ExperimentResult:
    """Table 5.1: basic vs improved index merge on f=(A-B^2)^2, top-100."""
    relation = synthetic_relation(scaled(20000, 1000000), 2, 2, 10, seed=41)
    indexes = _two_btrees(relation)
    signatures = JoinSignatureSet.full(indexes)
    function = ExpressionFunction((Var("N1") - Var("N2") ** 2) ** 2)
    result = ExperimentResult("tab5.1", "basic vs improved index merge", "variant",
                              ("states", "disk"))
    for name, mode, sigs in (("Basic", MODE_BASELINE, None),
                             ("Improved", MODE_SELECTIVE, signatures)):
        engine = IndexMergeTopK(indexes, mode=mode, join_signatures=sigs)
        for index in indexes:
            cold_buffers(index)
        outcome = engine.query(function, 100)
        result.add(name, "top-100", states=float(outcome.states_generated),
                   disk=float(outcome.disk_accesses))
    return result


def _time_vs_k(function_name: str) -> ExperimentResult:
    relation = synthetic_relation(scaled(20000, 1000000), 2, 2, 10, seed=41)
    indexes = _two_btrees(relation)
    signatures = JoinSignatureSet.full(indexes)
    function = _functions()[function_name]
    result = ExperimentResult(f"fig5.{function_name}", f"time vs K, f={function_name}",
                              "K", MERGE_METRICS)
    for k in (10, 20, 50, 100):
        _run_merge(result, k, relation, indexes, function, k, signatures)
    return result


def fig5_07_time_fs() -> ExperimentResult:
    """Figure 5.7: execution time w.r.t. K for the semi-monotone fs."""
    return _time_vs_k("fs")


def fig5_08_time_fg() -> ExperimentResult:
    """Figure 5.8: execution time w.r.t. K for the general fg."""
    return _time_vs_k("fg")


def fig5_09_time_fc() -> ExperimentResult:
    """Figure 5.9: execution time w.r.t. K for the constrained fc."""
    return _time_vs_k("fc")


_MEMO: Dict[str, ExperimentResult] = {}


def _per_function_metric() -> ExperimentResult:
    if "per_function" in _MEMO:
        return _MEMO["per_function"]
    relation = synthetic_relation(scaled(20000, 1000000), 2, 2, 10, seed=41)
    indexes = _two_btrees(relation)
    signatures = JoinSignatureSet.full(indexes)
    result = ExperimentResult("fig5.10-12", "per-function metrics at k=100", "f",
                              MERGE_METRICS)
    for name, function in _functions().items():
        _run_merge(result, name, relation, indexes, function, 100, signatures,
                   methods=("BL", "PE", "PE+SIG"))
    _MEMO["per_function"] = result
    return result


def fig5_10_disk_by_function() -> ExperimentResult:
    """Figure 5.10: disk accesses per function at k=100."""
    return _per_function_metric()


def fig5_11_states_by_function() -> ExperimentResult:
    """Figure 5.11: states generated per function at k=100."""
    return _per_function_metric()


def fig5_12_heap_by_function() -> ExperimentResult:
    """Figure 5.12: peak heap size per function at k=100."""
    return _per_function_metric()


def fig5_13_real_data() -> ExperimentResult:
    """Figure 5.13: execution time w.r.t. K on the CoverType surrogate (2 R-trees)."""
    relation = covertype_relation(scaled(15000, 1000000))
    left = ranking_rtree(relation, ["N1", "N2"], max_entries=32)
    right = dimension_btree(relation, "N3")
    indexes = [left, right]
    signatures = JoinSignatureSet.full(indexes)
    function = SquaredDistanceFunction(["N1", "N2", "N3"], [0.4, 0.5, 0.6])
    result = ExperimentResult("fig5.13", "time vs K on real data", "K", MERGE_METRICS)
    for k in (10, 20, 50, 100):
        _run_merge(result, k, relation, indexes, function, k, signatures)
    return result


def fig5_14_rtree_dimensionality() -> ExperimentResult:
    """Figure 5.14: execution time w.r.t. the dimensionality of the merged R-trees."""
    result = ExperimentResult("fig5.14", "time vs R-tree dimensionality", "d",
                              MERGE_METRICS)
    for d in (1, 2, 3):
        relation = synthetic_relation(scaled(10000, 1000000), 2, 2 * d, 10, seed=43)
        dims = relation.ranking_dims
        left = ranking_rtree(relation, dims[:d], max_entries=32)
        right = ranking_rtree(relation, dims[d:], max_entries=32)
        indexes = [left, right]
        signatures = JoinSignatureSet.full(indexes)
        targets = [0.5] * (2 * d)
        function = SquaredDistanceFunction(list(dims), targets)
        _run_merge(result, d, relation, indexes, function, 100, signatures,
                   methods=("TS", "PE", "PE+SIG"))
    return result


def _three_way(metric_only: bool = False) -> ExperimentResult:
    if "three_way" in _MEMO:
        return _MEMO["three_way"]
    relation = synthetic_relation(scaled(12000, 1000000), 2, 3, 10, seed=47)
    indexes = [dimension_btree(relation, d, 32) for d in ("N1", "N2", "N3")]
    pairwise = JoinSignatureSet.pairwise(indexes)
    full = JoinSignatureSet.full(indexes)
    function = SquaredDistanceFunction(["N1", "N2", "N3"], [0.3, 0.6, 0.2])
    result = ExperimentResult("fig5.15-17", "3-way merge", "K", MERGE_METRICS)
    scan = TableScanTopK(relation)
    for k in (10, 20, 50, 100):
        outcome = scan.query(TopKQuery(Predicate.of(), function, k))
        result.add("TS", k, time_s=outcome.elapsed_seconds,
                   disk=float(outcome.disk_accesses), states=0.0, heap=0.0)
        for name, sigs, mode in (("PE", None, MODE_PROGRESSIVE),
                                 ("PE+2dSIG", pairwise, MODE_SELECTIVE),
                                 ("PE+3dSIG", full, MODE_SELECTIVE)):
            engine = IndexMergeTopK(indexes, mode=mode, join_signatures=sigs)
            for index in indexes:
                cold_buffers(index)
            outcome = engine.query(function, k)
            result.add(name, k, time_s=outcome.elapsed_seconds,
                       disk=float(outcome.disk_accesses),
                       states=float(outcome.states_generated),
                       heap=float(outcome.peak_heap_size))
    _MEMO["three_way"] = result
    return result


def fig5_15_three_way_time() -> ExperimentResult:
    """Figure 5.15: 3-way merge execution time w.r.t. K."""
    return _three_way()


def fig5_16_three_way_heap() -> ExperimentResult:
    """Figure 5.16: 3-way merge peak heap size w.r.t. K."""
    return _three_way()


def fig5_17_three_way_disk() -> ExperimentResult:
    """Figure 5.17: 3-way merge disk accesses w.r.t. K."""
    return _three_way()


def fig5_18_partial_attributes() -> ExperimentResult:
    """Figure 5.18: only a subset of the indexed attributes participates in ranking."""
    relation = synthetic_relation(scaled(10000, 1000000), 2, 4, 10, seed=53)
    left = ranking_rtree(relation, ["N1", "N2"], max_entries=32)
    right = ranking_rtree(relation, ["N3", "N4"], max_entries=32)
    indexes = [left, right]
    signatures = JoinSignatureSet.full(indexes)
    result = ExperimentResult("fig5.18", "partial attributes in ranking",
                              "ranked_dims", MERGE_METRICS)
    for ranked in (2, 3, 4):
        dims = list(relation.ranking_dims[:ranked])
        function = SquaredDistanceFunction(dims, [0.5] * ranked)
        _run_merge(result, ranked, relation, indexes, function, 50, signatures,
                   methods=("PE", "PE+SIG"))
    return result


def fig5_19_node_size() -> ExperimentResult:
    """Figure 5.19: execution time w.r.t. the index node size (fanout)."""
    relation = synthetic_relation(scaled(15000, 1000000), 2, 2, 10, seed=59)
    function = _functions()["fg"]
    result = ExperimentResult("fig5.19", "time vs node fanout", "fanout",
                              MERGE_METRICS)
    for fanout in (16, 32, 64, 128):
        indexes = _two_btrees(relation, fanout=fanout)
        signatures = JoinSignatureSet.full(indexes)
        _run_merge(result, fanout, relation, indexes, function, 100, signatures,
                   methods=("PE", "PE+SIG"))
    return result


def fig5_20_database_size() -> ExperimentResult:
    """Figure 5.20: execution time w.r.t. the number of tuples."""
    function = _functions()["fs"]
    result = ExperimentResult("fig5.20", "time vs database size", "T", MERGE_METRICS)
    for t in (scaled(5000, 1000000), scaled(10000, 2000000), scaled(20000, 5000000)):
        relation = synthetic_relation(t, 2, 2, 10, seed=61)
        indexes = _two_btrees(relation)
        signatures = JoinSignatureSet.full(indexes)
        _run_merge(result, t, relation, indexes, function, 100, signatures)
    return result


def fig5_21_22_join_signature_build() -> ExperimentResult:
    """Figures 5.21–5.22: join-signature construction time and size w.r.t. T."""
    result = ExperimentResult("fig5.21-22", "join-signature build cost vs T", "T",
                              ("time_s", "bytes"))
    for t in (scaled(5000, 1000000), scaled(10000, 2000000), scaled(20000, 5000000)):
        relation = synthetic_relation(t, 2, 2, 10, seed=67)
        indexes = _two_btrees(relation)
        signatures = JoinSignatureSet.full(indexes)
        result.add("join-signature", t, time_s=signatures.build_seconds(),
                   bytes=float(signatures.size_in_bytes()))
    return result


EXPERIMENTS = {
    "tab5.1": tab5_01_significance,
    "fig5.7": fig5_07_time_fs,
    "fig5.8": fig5_08_time_fg,
    "fig5.9": fig5_09_time_fc,
    "fig5.10": fig5_10_disk_by_function,
    "fig5.11": fig5_11_states_by_function,
    "fig5.12": fig5_12_heap_by_function,
    "fig5.13": fig5_13_real_data,
    "fig5.14": fig5_14_rtree_dimensionality,
    "fig5.15": fig5_15_three_way_time,
    "fig5.16": fig5_16_three_way_heap,
    "fig5.17": fig5_17_three_way_disk,
    "fig5.18": fig5_18_partial_attributes,
    "fig5.19": fig5_19_node_size,
    "fig5.20": fig5_20_database_size,
    "fig5.21-22": fig5_21_22_join_signature_build,
}
