"""Chapter 7 experiments: skyline queries with boolean predicates."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.datasets import synthetic_relation
from repro.bench.harness import ExperimentResult, average, cold_buffers, scaled
from repro.query import Predicate, SkylineQuery
from repro.signature import SignatureRankingCube
from repro.skyline import BooleanFirstSkyline, SkylineEngine, SkylineSession
from repro.storage.table import Relation
from repro.workloads import random_predicate

METRICS = ("time_s", "disk", "heap")

_CUBES: Dict[Tuple, SignatureRankingCube] = {}


def _cube(relation: Relation) -> SignatureRankingCube:
    key = (id(relation),)
    if key not in _CUBES:
        _CUBES[key] = SignatureRankingCube(relation, rtree_max_entries=32)
    return _CUBES[key]


def _relation(num_tuples: int = 0, cardinality: int = 20, num_selection_dims: int = 3,
              num_ranking_dims: int = 3, distribution: str = "E") -> Relation:
    return synthetic_relation(num_tuples or scaled(8000, 1000000), num_selection_dims,
                              num_ranking_dims, cardinality,
                              distribution=distribution, seed=73)


def _run_skyline(result: ExperimentResult, x: object, relation: Relation,
                 queries: Sequence[SkylineQuery],
                 methods: Sequence[str] = ("Signature", "Ranking", "Boolean")) -> None:
    cube = _cube(relation)
    engines = {
        "Signature": SkylineEngine(cube, use_signature=True),
        "Ranking": SkylineEngine(cube, use_signature=False),
        "Boolean": BooleanFirstSkyline(relation),
    }
    for method in methods:
        engine = engines[method]
        times: List[float] = []
        disks: List[float] = []
        heaps: List[float] = []
        for query in queries:
            cold_buffers(cube, cube.rtree, cube.store)
            outcome = engine.query(query)
            times.append(outcome.elapsed_seconds)
            disks.append(float(outcome.disk_accesses))
            heaps.append(float(outcome.peak_heap_size))
        result.add(method, x, time_s=average(times), disk=average(disks),
                   heap=average(heaps))


def _random_queries(relation: Relation, count: int, num_predicates: int = 1,
                    dims: Sequence[str] = ("N1", "N2"), dynamic: bool = False,
                    seed: int = 5) -> List[SkylineQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        predicate = (random_predicate(relation, num_predicates, rng=rng)
                     if num_predicates else Predicate.of())
        targets = tuple(rng.random(len(dims))) if dynamic else None
        queries.append(SkylineQuery(predicate, tuple(dims), targets))
    return queries


def fig7_03_05_database_size() -> ExperimentResult:
    """Figures 7.3–7.5: time / disk accesses / peak heap w.r.t. T."""
    result = ExperimentResult("fig7.3-5", "skyline cost vs database size", "T", METRICS)
    for t in (scaled(4000, 1000000), scaled(8000, 2000000), scaled(16000, 5000000)):
        relation = _relation(num_tuples=t)
        queries = _random_queries(relation, scaled(3, 10))
        _run_skyline(result, t, relation, queries)
    return result


def fig7_06_cardinality() -> ExperimentResult:
    """Figure 7.6: execution time w.r.t. the boolean-dimension cardinality C."""
    result = ExperimentResult("fig7.6", "skyline time vs cardinality", "C", METRICS)
    for c in (10, 100, 1000):
        relation = synthetic_relation(scaled(8000, 1000000), 3, 3, c, seed=79)
        queries = _random_queries(relation, scaled(3, 10))
        _run_skyline(result, c, relation, queries)
    return result


def fig7_07_distribution() -> ExperimentResult:
    """Figure 7.7: execution time w.r.t. the data distribution (E / C / A)."""
    result = ExperimentResult("fig7.7", "skyline time vs distribution", "S", METRICS)
    for distribution in ("E", "C", "A"):
        relation = synthetic_relation(scaled(8000, 1000000), 3, 3, 20,
                                      distribution=distribution, seed=83)
        queries = _random_queries(relation, scaled(3, 10))
        _run_skyline(result, distribution, relation, queries)
    return result


def fig7_08_preference_dims() -> ExperimentResult:
    """Figure 7.8: execution time w.r.t. the number of preference dimensions Dp."""
    relation = _relation(num_ranking_dims=4)
    result = ExperimentResult("fig7.8", "skyline time vs preference dims", "Dp", METRICS)
    for dp in (2, 3, 4):
        dims = relation.ranking_dims[:dp]
        queries = _random_queries(relation, scaled(3, 10), dims=dims)
        _run_skyline(result, dp, relation, queries)
    return result


def fig7_09_boolean_predicates() -> ExperimentResult:
    """Figure 7.9: execution time w.r.t. the number of boolean predicates m."""
    relation = _relation(num_selection_dims=4, cardinality=10)
    result = ExperimentResult("fig7.9", "skyline time vs #predicates", "m", METRICS)
    for m in (1, 2, 3, 4):
        queries = _random_queries(relation, scaled(3, 10), num_predicates=m)
        _run_skyline(result, m, relation, queries)
    return result


def fig7_10_hardness() -> ExperimentResult:
    """Figure 7.10: execution time w.r.t. query hardness (predicate selectivity)."""
    result = ExperimentResult("fig7.10", "skyline time vs hardness", "cardinality",
                              METRICS)
    # Lower cardinality -> more qualifying tuples -> harder skyline queries.
    for c in (5, 20, 80):
        relation = synthetic_relation(scaled(8000, 1000000), 3, 3, c, seed=89)
        queries = _random_queries(relation, scaled(3, 10), num_predicates=2)
        _run_skyline(result, c, relation, queries)
    return result


def fig7_11_predicate_types() -> ExperimentResult:
    """Figure 7.11: static vs dynamic skylines under boolean predicates."""
    relation = _relation()
    result = ExperimentResult("fig7.11", "static vs dynamic skylines", "type", METRICS)
    static = _random_queries(relation, scaled(3, 10), num_predicates=2)
    dynamic = _random_queries(relation, scaled(3, 10), num_predicates=2, dynamic=True)
    _run_skyline(result, "static", relation, static)
    _run_skyline(result, "dynamic", relation, dynamic)
    return result


def fig7_12_breakdown() -> ExperimentResult:
    """Figure 7.12: signature-loading cost vs total query cost."""
    relation = _relation()
    cube = _cube(relation)
    engine = SkylineEngine(cube, use_signature=True)
    result = ExperimentResult("fig7.12", "signature loading vs query time",
                              "query", ("signature_accesses", "total_accesses"))
    for i, query in enumerate(_random_queries(relation, scaled(4, 10),
                                              num_predicates=2)):
        cold_buffers(cube, cube.rtree, cube.store)
        outcome = engine.query(query)
        result.add("Signature", i, signature_accesses=float(outcome.signature_accesses),
                   total_accesses=float(outcome.disk_accesses))
    return result


def fig7_13_14_olap_navigation() -> ExperimentResult:
    """Figures 7.13–7.14: drill-down / roll-up vs an equivalent fresh query."""
    relation = _relation(num_selection_dims=4, cardinality=10)
    cube = _cube(relation)
    engine = SkylineEngine(cube, use_signature=True)
    session = SkylineSession(engine)
    result = ExperimentResult("fig7.13-14", "OLAP navigation vs fresh queries",
                              "step", METRICS)
    rng = np.random.default_rng(97)
    tid = int(rng.integers(0, relation.num_tuples))
    values = relation.selection_values(tid)
    base = SkylineQuery(Predicate.of(A1=values["A1"]), ("N1", "N2"))
    fresh_base = session.fresh(base)
    result.add("fresh", "base", time_s=fresh_base.elapsed_seconds,
               disk=float(fresh_base.disk_accesses),
               heap=float(fresh_base.peak_heap_size))

    drilled = session.drill_down({"A2": values["A2"]})
    result.add("drill-down (warm)", "base+A2", time_s=drilled.elapsed_seconds,
               disk=float(drilled.disk_accesses), heap=float(drilled.peak_heap_size))
    fresh_drill = session.fresh(SkylineQuery(
        Predicate.of(A1=values["A1"], A2=values["A2"]), ("N1", "N2")))
    result.add("fresh", "base+A2", time_s=fresh_drill.elapsed_seconds,
               disk=float(fresh_drill.disk_accesses),
               heap=float(fresh_drill.peak_heap_size))

    rolled = session.roll_up(["A2"])
    result.add("roll-up (warm)", "base", time_s=rolled.elapsed_seconds,
               disk=float(rolled.disk_accesses), heap=float(rolled.peak_heap_size))
    return result


EXPERIMENTS = {
    "fig7.3-5": fig7_03_05_database_size,
    "fig7.6": fig7_06_cardinality,
    "fig7.7": fig7_07_distribution,
    "fig7.8": fig7_08_preference_dims,
    "fig7.9": fig7_09_boolean_predicates,
    "fig7.10": fig7_10_hardness,
    "fig7.11": fig7_11_predicate_types,
    "fig7.12": fig7_12_breakdown,
    "fig7.13-14": fig7_13_14_olap_navigation,
}
