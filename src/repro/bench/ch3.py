"""Chapter 3 experiments: grid ranking cube and ranking fragments.

One function per paper figure (3.4–3.15).  Every function compares the
ranking cube (or ranking fragments) against the baseline (boolean-first over
per-dimension indexes, the SQL-Server stand-in) and the rank-mapping
approach with oracle-optimal bounds, reporting average query time and
counted disk accesses.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import BooleanFirstTopK, RankMappingTopK
from repro.bench.datasets import (
    covertype_relation,
    fragment_cube,
    grid_cube,
    selection_index,
    synthetic_relation,
)
from repro.bench.harness import ExperimentResult, average, cold_buffers, scaled
from repro.cube import RankingCube, build_ranking_fragments
from repro.query import Predicate, TopKQuery
from repro.workloads import QuerySpec, generate_queries
from repro.storage.table import Relation

#: Methods compared in most Chapter 3 figures.
METHODS = ("ranking cube", "rank mapping", "baseline")
METRICS = ("time_s", "disk")


def _default_relation(num_ranking_dims: int = 2, cardinality: int = 20,
                      num_selection_dims: int = 3, num_tuples: int = 0) -> Relation:
    return synthetic_relation(
        num_tuples or scaled(20000, 1000000), num_selection_dims,
        num_ranking_dims, cardinality)


def _run_methods(result: ExperimentResult, x: object, relation: Relation,
                 cube: RankingCube, queries: Sequence[TopKQuery],
                 cube_label: str = "ranking cube") -> None:
    index = selection_index(relation)
    engines = {
        cube_label: cube.query,
        "rank mapping": RankMappingTopK(relation, index=index).query,
        "baseline": BooleanFirstTopK(relation, index=index).query,
    }
    for method, run in engines.items():
        times: List[float] = []
        disks: List[float] = []
        for query in queries:
            cold_buffers(cube, index, cube.block_table)
            outcome = run(query)
            times.append(outcome.elapsed_seconds)
            disks.append(outcome.disk_accesses)
        result.add(method, x, time_s=average(times), disk=average(disks))


def _queries(relation: Relation, k: int = 10, s: int = 2, r: int = 2,
             skewness: float = 1.0, count: int = 0, seed: int = 13) -> List[TopKQuery]:
    spec = QuerySpec(k=k, num_selection_conditions=s, num_ranking_dims=r,
                     skewness=skewness, seed=seed)
    return generate_queries(relation, spec, count=count or scaled(5, 20))


# ----------------------------------------------------------------------
# Figures 3.4 - 3.10: ranking cube on synthetic data
# ----------------------------------------------------------------------
def fig3_04_topk() -> ExperimentResult:
    """Figure 3.4: query execution time w.r.t. k."""
    relation = _default_relation()
    cube = grid_cube(relation)
    result = ExperimentResult("fig3.4", "query time vs k", "k", METRICS)
    for k in (5, 10, 15, 20):
        _run_methods(result, k, relation, cube, _queries(relation, k=k))
    return result


def fig3_05_skewness() -> ExperimentResult:
    """Figure 3.5: query execution time w.r.t. query skewness u."""
    relation = _default_relation()
    cube = grid_cube(relation)
    result = ExperimentResult("fig3.5", "query time vs skewness", "u", METRICS)
    for u in (1, 2, 3, 4, 5):
        _run_methods(result, u, relation, cube, _queries(relation, skewness=float(u)))
    return result


def fig3_06_ranking_dims() -> ExperimentResult:
    """Figure 3.6: query time w.r.t. r (dims in the ranking function)."""
    relation = synthetic_relation(scaled(15000, 1000000), 3, 4, 20)
    cube = grid_cube(relation)
    result = ExperimentResult("fig3.6", "query time vs ranking dims", "r", METRICS)
    for r in (2, 3, 4):
        _run_methods(result, r, relation, cube, _queries(relation, r=r))
    return result


def fig3_07_database_size() -> ExperimentResult:
    """Figure 3.7: query time w.r.t. database size T."""
    result = ExperimentResult("fig3.7", "query time vs database size", "T", METRICS)
    for t in (scaled(5000, 1000000), scaled(10000, 3000000), scaled(20000, 5000000),
              scaled(40000, 10000000)):
        relation = synthetic_relation(t, 3, 2, 20)
        cube = grid_cube(relation)
        _run_methods(result, t, relation, cube, _queries(relation))
    return result


def fig3_08_cardinality() -> ExperimentResult:
    """Figure 3.8: query time w.r.t. selection-dimension cardinality C."""
    result = ExperimentResult("fig3.8", "query time vs cardinality", "C", METRICS)
    for c in (10, 20, 50, 100):
        relation = synthetic_relation(scaled(20000, 3000000), 3, 2, c)
        cube = grid_cube(relation)
        _run_methods(result, c, relation, cube, _queries(relation))
    return result


def fig3_09_selection_conditions() -> ExperimentResult:
    """Figure 3.9: query time w.r.t. the number of selection conditions s."""
    relation = synthetic_relation(scaled(20000, 3000000), 4, 2, 20)
    cube = grid_cube(relation)
    result = ExperimentResult("fig3.9", "query time vs #selection conditions",
                              "s", METRICS)
    for s in (2, 3, 4):
        _run_methods(result, s, relation, cube, _queries(relation, s=s))
    return result


def fig3_10_block_size() -> ExperimentResult:
    """Figure 3.10: ranking-cube query time w.r.t. base block size B."""
    relation = _default_relation()
    result = ExperimentResult("fig3.10", "ranking cube time vs block size",
                              "block_size", METRICS)
    queries = _queries(relation)
    for block_size in (100, 200, 500, 1000):
        cube = RankingCube(relation, block_size=block_size)
        times, disks = [], []
        for query in queries:
            cold_buffers(cube, cube.block_table)
            outcome = cube.query(query)
            times.append(outcome.elapsed_seconds)
            disks.append(outcome.disk_accesses)
        result.add("ranking cube", block_size, time_s=average(times),
                   disk=average(disks))
    return result


# ----------------------------------------------------------------------
# Figures 3.11 - 3.15: ranking fragments (high boolean dimensionality)
# ----------------------------------------------------------------------
def fig3_11_space() -> ExperimentResult:
    """Figure 3.11: materialized space w.r.t. the number of selection dims."""
    result = ExperimentResult("fig3.11", "space usage vs #selection dims", "S",
                              ("bytes",))
    num_tuples = scaled(10000, 1000000)
    for s in (3, 6, 9, 12):
        relation = synthetic_relation(num_tuples, s, 2, 20)
        fragments = build_ranking_fragments(relation, fragment_size=2)
        index = SelectionIndexSize(relation)
        result.add("ranking fragments", s, bytes=float(fragments.size_in_bytes()))
        result.add("baseline indexes", s, bytes=float(index))
    return result


def SelectionIndexSize(relation: Relation) -> int:
    """Size of the per-dimension indexes used by the baselines."""
    return selection_index(relation).size_in_bytes()


def fig3_12_covering_fragments() -> ExperimentResult:
    """Figure 3.12: query time w.r.t. the number of covering fragments."""
    relation = synthetic_relation(scaled(20000, 1000000), 6, 2, 20)
    fragments = fragment_cube(relation, fragment_size=2)
    result = ExperimentResult("fig3.12", "query time vs covering fragments",
                              "fragments", METRICS)
    rng = np.random.default_rng(3)
    # Queries intentionally covered by 1, 2 and 3 fragments.
    dim_choices = {1: ("A1", "A2"), 2: ("A1", "A3"), 3: ("A1", "A3", "A5")}
    for count, dims in dim_choices.items():
        times, disks = [], []
        for _ in range(scaled(5, 20)):
            tid = int(rng.integers(0, relation.num_tuples))
            values = relation.selection_values(tid)
            predicate = Predicate.of({d: values[d] for d in dims})
            from repro.functions import LinearFunction
            query = TopKQuery(predicate, LinearFunction(["N1", "N2"], [1.0, 1.0]), 10)
            cold_buffers(fragments, fragments.block_table)
            outcome = fragments.query(query)
            times.append(outcome.elapsed_seconds)
            disks.append(outcome.disk_accesses)
        result.add("ranking fragments", count, time_s=average(times),
                   disk=average(disks))
    return result


def fig3_13_fragment_size() -> ExperimentResult:
    """Figure 3.13: query time w.r.t. the fragment size F."""
    relation = synthetic_relation(scaled(20000, 1000000), 6, 2, 20)
    result = ExperimentResult("fig3.13", "query time vs fragment size", "F", METRICS)
    queries = _queries(relation, s=3)
    for fragment_size in (1, 2, 3):
        fragments = build_ranking_fragments(relation, fragment_size=fragment_size)
        times, disks = [], []
        for query in queries:
            cold_buffers(fragments, fragments.block_table)
            outcome = fragments.query(query)
            times.append(outcome.elapsed_seconds)
            disks.append(outcome.disk_accesses)
        result.add("ranking fragments", fragment_size, time_s=average(times),
                   disk=average(disks))
    return result


def fig3_14_selection_dims() -> ExperimentResult:
    """Figure 3.14: query time w.r.t. the number of selection dimensions S."""
    result = ExperimentResult("fig3.14", "query time vs #selection dims", "S", METRICS)
    for s in (3, 6, 9, 12):
        relation = synthetic_relation(scaled(15000, 1000000), s, 2, 20)
        fragments = fragment_cube(relation, fragment_size=2)
        _run_methods(result, s, relation, fragments, _queries(relation, s=3),
                     cube_label="ranking fragments")
    return result


def fig3_15_real_data() -> ExperimentResult:
    """Figure 3.15: query time on the CoverType-like real-data surrogate."""
    relation = covertype_relation(scaled(15000, 500000))
    fragments = fragment_cube(relation, fragment_size=3)
    result = ExperimentResult("fig3.15", "query time vs k on real data", "k", METRICS)
    for k in (5, 10, 15, 20):
        queries = _queries(relation, k=k, s=3, r=3)
        _run_methods(result, k, relation, fragments, queries,
                     cube_label="ranking fragments")
    return result


#: Registry used by EXPERIMENTS.md generation and the smoke tests.
EXPERIMENTS = {
    "fig3.4": fig3_04_topk,
    "fig3.5": fig3_05_skewness,
    "fig3.6": fig3_06_ranking_dims,
    "fig3.7": fig3_07_database_size,
    "fig3.8": fig3_08_cardinality,
    "fig3.9": fig3_09_selection_conditions,
    "fig3.10": fig3_10_block_size,
    "fig3.11": fig3_11_space,
    "fig3.12": fig3_12_covering_fragments,
    "fig3.13": fig3_13_fragment_size,
    "fig3.14": fig3_14_selection_dims,
    "fig3.15": fig3_15_real_data,
}
