"""Geometry-based data partitioning (Section 3.2.2).

The grid partition assigns every tuple to a *base block* according to its
ranking-dimension values; pseudo blocks merge base blocks so that the tuples
of one cube cell fill a disk page (Section 3.2.3).
"""

from repro.partition.grid import GridPartition
from repro.partition.equidepth import equidepth_boundaries, equidepth_partition
from repro.partition.equiwidth import equiwidth_boundaries, equiwidth_partition

__all__ = [
    "GridPartition",
    "equidepth_boundaries",
    "equidepth_partition",
    "equiwidth_boundaries",
    "equiwidth_partition",
]
