"""Grid partition of the ranking dimensions into base and pseudo blocks.

Section 3.2.2: the ranking dimensions are cut into bins; the Cartesian
product of the bins forms *base blocks* identified by a ``bid``.  Section
3.2.3: for a cuboid whose selection cardinalities are ``c1..cs``, every
``sf = floor((prod c_j) ** (1/R))`` consecutive bins per dimension are
merged into a *pseudo block* identified by a ``pid`` so the tuples of one
cube cell fill roughly one disk page.

The class below owns the bin boundaries (the cube's *meta information*),
maps points to bids/pids, exposes the geometric box of any block (used for
ranking-function lower bounds), and enumerates block neighborhoods (Lemma 1
expansion in the query algorithm).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CubeError
from repro.geometry import Box, Interval
from repro.storage.table import Relation


class GridPartition:
    """An axis-aligned grid over a fixed tuple of ranking dimensions."""

    def __init__(self, dims: Sequence[str], boundaries: Mapping[str, np.ndarray]) -> None:
        self.dims: Tuple[str, ...] = tuple(dims)
        if not self.dims:
            raise CubeError("a grid partition needs at least one ranking dimension")
        self.boundaries: Dict[str, np.ndarray] = {}
        for dim in self.dims:
            bounds = np.asarray(boundaries[dim], dtype=np.float64)
            if bounds.ndim != 1 or bounds.size < 2:
                raise CubeError(f"dimension {dim!r} needs at least two boundaries")
            if np.any(np.diff(bounds) <= 0):
                raise CubeError(f"boundaries of {dim!r} must be strictly increasing")
            self.boundaries[dim] = bounds
        self._bins_per_dim: Tuple[int, ...] = tuple(
            len(self.boundaries[d]) - 1 for d in self.dims
        )

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def bins_per_dim(self) -> Tuple[int, ...]:
        """Number of bins along each dimension, in :attr:`dims` order."""
        return self._bins_per_dim

    @property
    def num_blocks(self) -> int:
        """Total number of base blocks."""
        total = 1
        for count in self._bins_per_dim:
            total *= count
        return total

    def domain(self) -> Box:
        """The full domain box covered by the grid."""
        return Box({
            dim: Interval(float(bounds[0]), float(bounds[-1]))
            for dim, bounds in self.boundaries.items()
        })

    # ------------------------------------------------------------------
    # coordinates <-> linear block ids
    # ------------------------------------------------------------------
    def bid_of_coords(self, coords: Sequence[int]) -> int:
        """Row-major linear base-block id of grid coordinates (0-based)."""
        bid = 0
        for coord, count in zip(coords, self._bins_per_dim):
            if not 0 <= coord < count:
                raise CubeError(f"coordinate {coord} out of range [0, {count})")
            bid = bid * count + coord
        return bid

    def coords_of_bid(self, bid: int) -> Tuple[int, ...]:
        """Grid coordinates of a linear base-block id."""
        if not 0 <= bid < self.num_blocks:
            raise CubeError(f"bid {bid} out of range [0, {self.num_blocks})")
        coords: List[int] = []
        for count in reversed(self._bins_per_dim):
            coords.append(bid % count)
            bid //= count
        return tuple(reversed(coords))

    def bin_of_value(self, dim: str, value: float) -> int:
        """Bin index of one value along one dimension (clamped to the domain)."""
        bounds = self.boundaries[dim]
        idx = int(np.searchsorted(bounds, value, side="right")) - 1
        return min(max(idx, 0), len(bounds) - 2)

    def bid_of_point(self, values: Mapping[str, float]) -> int:
        """Base block containing a point given as ``{dim: value}``."""
        coords = tuple(self.bin_of_value(dim, values[dim]) for dim in self.dims)
        return self.bid_of_coords(coords)

    def assign(self, relation: Relation) -> np.ndarray:
        """Base-block id of every tuple in ``relation`` (vectorized)."""
        bids = np.zeros(relation.num_tuples, dtype=np.int64)
        for dim, count in zip(self.dims, self._bins_per_dim):
            bounds = self.boundaries[dim]
            column = relation.ranking_column(dim)
            bins = np.searchsorted(bounds, column, side="right") - 1
            bins = np.clip(bins, 0, count - 1)
            bids = bids * count + bins
        return bids

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def block_box(self, bid: int, dims: Optional[Sequence[str]] = None) -> Box:
        """Axis-aligned box of a base block, optionally projected onto ``dims``."""
        coords = self.coords_of_bid(bid)
        intervals: Dict[str, Interval] = {}
        for dim, coord in zip(self.dims, coords):
            bounds = self.boundaries[dim]
            intervals[dim] = Interval(float(bounds[coord]), float(bounds[coord + 1]))
        box = Box(intervals)
        if dims is not None:
            box = box.project(dims)
        return box

    def neighbors(self, bid: int) -> List[int]:
        """Base blocks sharing a face with ``bid`` (±1 along one dimension)."""
        coords = self.coords_of_bid(bid)
        result: List[int] = []
        for axis, count in enumerate(self._bins_per_dim):
            for delta in (-1, 1):
                coord = coords[axis] + delta
                if 0 <= coord < count:
                    neighbor = list(coords)
                    neighbor[axis] = coord
                    result.append(self.bid_of_coords(neighbor))
        return result

    def iter_bids(self) -> Iterator[int]:
        """Iterate over every base-block id."""
        return iter(range(self.num_blocks))

    # ------------------------------------------------------------------
    # pseudo blocks (Section 3.2.3)
    # ------------------------------------------------------------------
    def scale_factor(self, cardinalities: Sequence[int]) -> int:
        """``sf = floor((prod c_j) ** (1/R))``, clamped to the grid size."""
        product = 1
        for card in cardinalities:
            product *= max(1, int(card))
        sf = int(math.floor(product ** (1.0 / len(self.dims)))) if product > 1 else 1
        sf = max(1, sf)
        return min(sf, max(self._bins_per_dim))

    def pid_of_bid(self, bid: int, scale_factor: int) -> int:
        """Pseudo-block id of a base block under a given scale factor."""
        coords = self.coords_of_bid(bid)
        pseudo_counts = self.pseudo_bins_per_dim(scale_factor)
        pid = 0
        for coord, pseudo_count in zip(coords, pseudo_counts):
            pid = pid * pseudo_count + min(coord // scale_factor, pseudo_count - 1)
        return pid

    def pseudo_bins_per_dim(self, scale_factor: int) -> Tuple[int, ...]:
        """Number of pseudo bins along each dimension under ``scale_factor``."""
        return tuple(
            max(1, math.ceil(count / scale_factor)) for count in self._bins_per_dim
        )

    def num_pseudo_blocks(self, scale_factor: int) -> int:
        """Total number of pseudo blocks under ``scale_factor``."""
        total = 1
        for count in self.pseudo_bins_per_dim(scale_factor):
            total *= count
        return total

    # ------------------------------------------------------------------
    # meta information
    # ------------------------------------------------------------------
    def meta(self) -> Dict[str, List[float]]:
        """Bin boundaries keyed by dimension (the cube meta table)."""
        return {dim: bounds.tolist() for dim, bounds in self.boundaries.items()}

    def project(self, dims: Sequence[str]) -> "GridPartition":
        """Grid restricted to a subset of its dimensions."""
        missing = [d for d in dims if d not in self.boundaries]
        if missing:
            raise CubeError(f"dimensions {missing} are not part of this grid")
        return GridPartition(dims, {d: self.boundaries[d] for d in dims})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "x".join(str(c) for c in self._bins_per_dim)
        return f"GridPartition(dims={list(self.dims)}, bins={shape})"
