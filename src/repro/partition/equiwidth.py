"""Equi-width partitioning — the alternative strategy noted in Section 3.6.2."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.partition.grid import GridPartition
from repro.storage.table import Relation


def equiwidth_boundaries(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Evenly spaced boundaries between the column minimum and maximum."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return np.linspace(0.0, 1.0, num_bins + 1)
    low, high = float(values.min()), float(values.max())
    if high <= low:
        high = low + 1.0
    return np.linspace(low, high, num_bins + 1)


def equiwidth_partition(relation: Relation, num_bins: int,
                        dims: Optional[Sequence[str]] = None) -> GridPartition:
    """Build an equi-width :class:`GridPartition` with ``num_bins`` per dim."""
    dims = tuple(dims) if dims else relation.ranking_dims
    boundaries = {
        dim: equiwidth_boundaries(relation.ranking_column(dim), num_bins)
        for dim in dims
    }
    return GridPartition(dims, boundaries)
