"""Equi-depth partitioning of the ranking dimensions (Section 3.2.2).

The number of bins per dimension is ``b = (T / P) ** (1/R)`` where ``T`` is
the tuple count, ``P`` the target block size (expected tuples per base
block), and ``R`` the number of ranking dimensions.  Bin boundaries are
chosen so each 1-D bin holds (approximately) the same number of tuples; the
boundaries become the cube's meta information used at query time.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.partition.grid import GridPartition
from repro.storage.table import Relation


def bins_per_dimension(num_tuples: int, block_size: int, num_dims: int) -> int:
    """``b = (T / P) ** (1/R)``, at least 1."""
    if num_tuples <= 0 or block_size <= 0 or num_dims <= 0:
        return 1
    return max(1, int(round((num_tuples / block_size) ** (1.0 / num_dims))))


def equidepth_boundaries(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Bin boundaries (length ``num_bins + 1``) with equal tuple counts.

    The first boundary is the domain minimum and the last the domain maximum
    (extended marginally so that a closed-right binning catches the max).
    Duplicate boundaries caused by heavily repeated values are nudged apart
    so every bin keeps non-zero width.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return np.linspace(0.0, 1.0, num_bins + 1)
    quantiles = np.linspace(0.0, 1.0, num_bins + 1)
    boundaries = np.quantile(values, quantiles)
    # Ensure strictly increasing boundaries.
    for i in range(1, len(boundaries)):
        if boundaries[i] <= boundaries[i - 1]:
            boundaries[i] = boundaries[i - 1] + 1e-12
    return boundaries


def equidepth_partition(relation: Relation, block_size: int = 300,
                        dims: Optional[Sequence[str]] = None,
                        num_bins: Optional[int] = None) -> GridPartition:
    """Build an equi-depth :class:`GridPartition` over ``relation``.

    Parameters
    ----------
    block_size:
        Expected number of tuples per base block (``P`` in the thesis; the
        experiments default to 300).
    dims:
        Ranking dimensions to partition (defaults to all of them).
    num_bins:
        Override for the per-dimension bin count; normally derived from
        ``block_size``.
    """
    dims = tuple(dims) if dims else relation.ranking_dims
    if num_bins is None:
        num_bins = bins_per_dimension(relation.num_tuples, block_size, len(dims))
    boundaries = {
        dim: equidepth_boundaries(relation.ranking_column(dim), num_bins)
        for dim in dims
    }
    return GridPartition(dims, boundaries)
