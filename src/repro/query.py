"""Query model shared by every engine in the library.

A ranked OLAP query (thesis Section 1.2.1) is::

    select top k * from R
    where A'1 = a1 and ... A'i = ai
    order by f(N'1, ..., N'j)

i.e. a conjunction of equality predicates over selection dimensions plus an
ad-hoc ranking function over ranking dimensions.  Chapter 7 generalizes the
preference part to skylines; the boolean part stays the same, so the
predicate classes here are shared by the skyline engine as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.functions.base import RankingFunction
from repro.storage.table import Relation


@dataclass(frozen=True)
class Predicate:
    """A conjunction of equality conditions over selection dimensions.

    ``conditions`` maps dimension name to the required (coded) value.  The
    empty predicate matches every tuple.
    """

    conditions: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def of(cls, mapping: Optional[Mapping[str, int]] = None, **kwargs: int) -> "Predicate":
        """Build a predicate from a mapping and/or keyword conditions."""
        merged: Dict[str, int] = dict(mapping or {})
        merged.update({k: int(v) for k, v in kwargs.items()})
        return cls(tuple(sorted(merged.items())))

    @property
    def as_dict(self) -> Dict[str, int]:
        """The conditions as a plain ``{dim: value}`` dict."""
        return dict(self.conditions)

    @property
    def dims(self) -> Tuple[str, ...]:
        """Dimensions constrained by this predicate, sorted by name."""
        return tuple(dim for dim, _ in self.conditions)

    def is_empty(self) -> bool:
        """True when the predicate constrains nothing."""
        return not self.conditions

    def matches(self, relation: Relation, tid: int) -> bool:
        """Evaluate the predicate on a single tuple."""
        values = relation.selection_values(tid)
        return all(values.get(dim) == val for dim, val in self.conditions)

    def restricted_to(self, dims: Sequence[str]) -> "Predicate":
        """Return the sub-predicate over only ``dims``."""
        allowed = set(dims)
        return Predicate(tuple((d, v) for d, v in self.conditions if d in allowed))

    def validate(self, relation: Relation) -> None:
        """Raise :class:`QueryError` if a condition names a non-selection dim."""
        for dim, _ in self.conditions:
            if not relation.schema.is_selection(dim):
                raise QueryError(
                    f"predicate dimension {dim!r} is not a selection dimension of "
                    f"{relation.name}"
                )

    def __len__(self) -> int:
        return len(self.conditions)


def topk_order_key(tid: int, score: float) -> Tuple[float, int]:
    """Canonical total order of top-k answers: ``(score, tid)``.

    Every top-k engine ranks by ascending score and breaks score ties by
    ascending tuple id.  Centralizing the key makes the tie-break stable
    across backends — and across shards, whose per-shard answers are merged
    by exactly this key — so one query has one well-defined answer list no
    matter which execution path produced it.
    """
    return (float(score), int(tid))


@dataclass(frozen=True)
class TopKQuery:
    """A top-k query: boolean predicate + ranking function + k."""

    predicate: Predicate
    function: RankingFunction
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k}")

    @property
    def ranking_dims(self) -> Tuple[str, ...]:
        """Ranking dimensions referenced by the ranking function."""
        return tuple(self.function.dims)

    @property
    def selection_dims(self) -> Tuple[str, ...]:
        """Selection dimensions constrained by the predicate."""
        return self.predicate.dims

    def validate(self, relation: Relation) -> None:
        """Check every referenced dimension against the relation schema."""
        self.predicate.validate(relation)
        for dim in self.function.dims:
            if not relation.schema.is_ranking(dim):
                raise QueryError(
                    f"ranking dimension {dim!r} is not a ranking dimension of "
                    f"{relation.name}"
                )


@dataclass(frozen=True)
class SkylineQuery:
    """A skyline query with boolean predicates (Chapter 7).

    ``preference_dims`` are minimized.  ``targets`` turns the query into a
    *dynamic* skyline: each preference value is replaced by its absolute
    distance to the target before dominance is evaluated (Section 7.2.3).
    """

    predicate: Predicate
    preference_dims: Tuple[str, ...]
    targets: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.preference_dims:
            raise QueryError("a skyline query needs at least one preference dimension")
        if self.targets is not None and len(self.targets) != len(self.preference_dims):
            raise QueryError("targets must align with preference_dims")

    @property
    def is_dynamic(self) -> bool:
        """True when the query is a dynamic (target-relative) skyline."""
        return self.targets is not None


@dataclass
class QueryResult:
    """Result of a top-k query plus the execution statistics the paper reports.

    ``extra`` carries engine-specific statistics (floats) and, when the
    query went through :class:`repro.engine.Executor`, the chosen backend
    name under ``"backend"`` and the planner's explanation under ``"plan"``.
    """

    tids: Tuple[int, ...]
    scores: Tuple[float, ...]
    disk_accesses: int = 0
    states_generated: int = 0
    peak_heap_size: int = 0
    tuples_evaluated: int = 0
    elapsed_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.tids) != len(self.scores):
            raise QueryError("tids and scores must have the same length")

    def as_pairs(self) -> Tuple[Tuple[int, float], ...]:
        """Return ``((tid, score), ...)`` pairs in rank order."""
        return tuple(zip(self.tids, self.scores))

    @property
    def backend(self) -> Optional[str]:
        """Name of the engine backend that produced this result, if planned."""
        value = self.extra.get("backend")
        return str(value) if value is not None else None

    @property
    def plan(self) -> Optional[str]:
        """The planner's explanation of how this query was routed, if planned."""
        value = self.extra.get("plan")
        return str(value) if value is not None else None

    def __len__(self) -> int:
        return len(self.tids)
