"""Errors raised by the async serving layer."""

from __future__ import annotations

from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServeError):
    """The service is shut down (or shutting down) and admits no work."""


class ServiceOverloadedError(ServeError):
    """Admission control rejected the request: the queue hit its high-water mark.

    Backpressure by rejection — the caller learns immediately instead of
    queueing behind a backlog it can never clear.
    """


class RequestTimeoutError(ServeError):
    """The per-request deadline elapsed before a result was produced."""


class ShardUnavailableError(ServeError):
    """A shard stayed down through the engine's whole recovery ladder.

    The serving layer maps an engine-raised
    :class:`~repro.errors.ShardWorkerError` — exhausted retries, an open
    circuit breaker, a hung worker killed at the recv bound — to this
    typed error, so clients can tell capacity rejections
    (:class:`ServiceOverloadedError`), deadline misses
    (:class:`RequestTimeoutError`), and shard loss apart without parsing
    messages.  The original engine error rides along as ``__cause__``.
    """
