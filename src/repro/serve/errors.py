"""Errors raised by the async serving layer."""

from __future__ import annotations

from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServeError):
    """The service is shut down (or shutting down) and admits no work."""


class ServiceOverloadedError(ServeError):
    """Admission control rejected the request: the queue hit its high-water mark.

    Backpressure by rejection — the caller learns immediately instead of
    queueing behind a backlog it can never clear.
    """


class RequestTimeoutError(ServeError):
    """The per-request deadline elapsed before a result was produced."""
