"""Errors raised by the async serving layer."""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class ServiceClosedError(ServeError):
    """The service is shut down (or shutting down) and admits no work."""


class ServiceOverloadedError(ServeError):
    """Admission control rejected the request: the queue hit its high-water mark.

    Backpressure by rejection — the caller learns immediately instead of
    queueing behind a backlog it can never clear.  ``retry_after`` is the
    rejecting layer's estimate (seconds) of when the backlog will have
    drained enough to admit again, computed from the live queue depth and
    the observed drain rate; the HTTP tier surfaces it as a principled
    ``Retry-After`` header instead of a constant.  ``None`` when the
    rejecting layer has no drain evidence to estimate from.
    """

    def __init__(self, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RequestTimeoutError(ServeError):
    """The per-request deadline elapsed before a result was produced."""


class ShardUnavailableError(ServeError):
    """A shard stayed down through the engine's whole recovery ladder.

    The serving layer maps an engine-raised
    :class:`~repro.errors.ShardWorkerError` — exhausted retries, an open
    circuit breaker, a hung worker killed at the recv bound — to this
    typed error, so clients can tell capacity rejections
    (:class:`ServiceOverloadedError`), deadline misses
    (:class:`RequestTimeoutError`), and shard loss apart without parsing
    messages.  The original engine error rides along as ``__cause__``.
    """
