"""The asyncio front door: request queue, micro-batched dispatch, writes.

:class:`QueryService` turns an engine front door (the single-relation
:class:`~repro.engine.Executor` or the sharded
:class:`~repro.shard.scatter.ScatterGatherExecutor` — anything exposing
``execute_many`` and ``cache_stats``) into a long-lived concurrent
service:

* ``await service.submit(query)`` admits one query to a bounded request
  queue (rejecting beyond the high-water mark) and resolves with the
  engine's :class:`~repro.query.QueryResult`;
* a drain loop flushes the queue through the adaptive
  :class:`~repro.serve.batcher.MicroBatcher` — flush on max-batch-size or
  the linger deadline, whichever first — into **one**
  ``engine.execute_many`` call per tick, so concurrent clients issuing
  same-function queries transparently share one fused frontier sweep /
  R-tree traversal (PR 4) without coordinating with each other;
* engine work runs on a thread pool via ``loop.run_in_executor`` — a
  scatter engine's own leg pool is reused (``ensure_pool`` with a reserve
  for the front-door calls) rather than duplicated — gated by a global
  concurrency semaphore and optional per-backend semaphores;
* ``await service.insert(row)`` / ``await service.reshard(policy)`` form
  a serialized write path: writers drain the in-flight engine calls
  before mutating, so the invalidation hooks a mutation fires can never
  race a sweep that is half way through the old data.

Every response's ``extra`` carries the serving provenance next to the
engine's usual fields: ``queue_wait`` (seconds from admission to
dispatch), ``batch_size`` (live requests in the dispatched batch), and
the engine-recorded ``fused_group_size``.
"""

from __future__ import annotations

import asyncio
import functools
import inspect
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Mapping, Optional, Set

from repro.errors import (
    DeadlineExceededError,
    PartialBatchError,
    ShardWorkerError,
)
from repro.fault.deadline import Deadline
from repro.obs.metrics import MetricsRegistry, merged_snapshot
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.batcher import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    MicroBatcher,
    QueuedRequest,
)
from repro.serve.config import ServiceConfig
from repro.serve.errors import (
    RequestTimeoutError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardUnavailableError,
)
from repro.serve.stats import ServiceStats

_UNSET = object()


class QueryService:
    """Async serving facade over an engine front door.

    Parameters
    ----------
    engine:
        The executor to serve: an :class:`~repro.engine.Executor` or a
        :class:`~repro.shard.scatter.ScatterGatherExecutor`.
    config:
        :class:`~repro.serve.config.ServiceConfig` tunables (micro-batch
        size and linger, admission high-water mark, timeouts, concurrency
        limits).
    manager:
        The :class:`~repro.shard.manager.ShardManager` backing the write
        path.  Defaults to ``engine.manager`` when the engine is a
        scatter/gather executor; without one, :meth:`insert` needs
        ``relation`` and :meth:`reshard` is unavailable.
    relation:
        Unsharded write target: :meth:`insert` appends to it directly and
        narrows the engine's cache invalidation to the inserted row.
        Note the unsharded engine's scope caveat
        (:meth:`~repro.engine.Executor.watch_relation`): backends with
        static indexes keep answering from the data they were built over.
        The manager-backed path rebuilds the owning shard's stack instead
        and has no such caveat.
    clock:
        Monotonic time source, injected by tests.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` the service's
        ``serve.*`` instruments publish into.  Defaults to the *engine's*
        registry when it has one, so one snapshot covers ``serve.*`` and
        ``engine.*`` / ``shard.*`` together.
    tracer:
        An explicit :class:`~repro.obs.trace.Tracer`; defaults to one
        built from the config's tracing knobs (the no-op null tracer
        when ``config.tracing`` is off and no slow-query threshold set).

    The service must be started inside a running event loop — use
    ``async with QueryService(...) as service:`` or call :meth:`start` /
    :meth:`close` explicitly.
    """

    def __init__(self, engine, config: Optional[ServiceConfig] = None, *,
                 manager=None, relation=None,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.manager = manager if manager is not None \
            else getattr(engine, "manager", None)
        self.relation = relation
        self._clock = clock
        self.metrics = (metrics
                        if metrics is not None
                        else getattr(engine, "metrics", None))
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        if tracer is not None:
            self.tracer = tracer
        elif self.config.tracing or self.config.slow_query_threshold is not None:
            # The tracer shares the service clock so queue-wait spans
            # (timed by enqueued_at) and engine spans share one timebase.
            self.tracer = Tracer(
                ring_size=self.config.trace_ring_size,
                slow_threshold=self.config.slow_query_threshold,
                clock=clock)
        else:
            self.tracer = NULL_TRACER
        # Whether the engine's execute_many accepts parent_span /
        # deadline — custom duck-typed engines without the keywords keep
        # working untraced and unbounded.
        try:
            params = inspect.signature(engine.execute_many).parameters
        except (TypeError, ValueError):  # builtins / odd callables
            params = {}
        self._engine_takes_span = "parent_span" in params
        self._engine_takes_deadline = "deadline" in params
        self._engine_takes_partial = "allow_partial" in params
        # Whether the engine's single-query execute can stream verified
        # top-k prefixes (the unsharded Executor can; scatter engines and
        # duck-typed fakes fall back to a single final frame).
        execute = getattr(engine, "execute", None)
        self._engine_execute = execute
        try:
            execute_params = (inspect.signature(execute).parameters
                              if execute is not None else {})
        except (TypeError, ValueError):
            execute_params = {}
        self._engine_takes_progress = "on_progress" in execute_params
        self.batcher = MicroBatcher(self.config.max_batch_size,
                                    self.config.max_linger,
                                    self.config.min_linger,
                                    clock=clock)
        self.stats = ServiceStats(window=self.config.latency_window,
                                  clock=clock, metrics=self.metrics)
        self._ensure_pool = getattr(engine, "ensure_pool", None)
        if self._ensure_pool is not None:
            # Reuse the scatter layer's leg pool; the reserve keeps the
            # front-door calls from starving the legs they fan out to.
            # The handle is re-fetched per dispatch (never cached): a
            # later ensure_pool with a larger reserve replaces the pool,
            # invalidating old handles.
            self._pool: ThreadPoolExecutor = self._ensure_pool(
                reserve=self.config.engine_concurrency)
            self._owns_pool = False
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.engine_concurrency,
                thread_name_prefix="repro-serve")
            self._owns_pool = True
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._tasks: Set[asyncio.Task] = set()
        self._closing = False
        self._closed = False
        self._engine_calls = 0
        self._fused_baseline = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryService":
        """Bind to the running loop and start the drain loop."""
        if self._loop is not None:
            raise ServeError("QueryService is already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._no_writer = asyncio.Event()
        self._no_writer.set()
        self._engine_idle = asyncio.Event()
        self._engine_idle.set()
        self._mutation_lock = asyncio.Lock()
        self._engine_sem = asyncio.Semaphore(self.config.engine_concurrency)
        self._backend_sems = {
            name: asyncio.Semaphore(int(limit))
            for name, limit in dict(self.config.backend_limits).items()
        }
        # Fusion the engine did before the service attached (warm-ups,
        # direct use) must not inflate the service's fusion rate.
        self._fused_baseline = float(
            self.engine.cache_stats().get("fused_queries", 0.0))
        self._drain_task = self._loop.create_task(self._drain_loop())
        return self

    async def close(self) -> None:
        """Stop admissions, flush the queue, wait for in-flight work.

        Pending requests are *executed* (graceful drain), not failed —
        the drain loop keeps flushing forced micro-batches until the
        queue is empty, so a backlog deeper than one ``max_batch_size``
        batch cannot strand requests; admissions racing the shutdown get
        :class:`~repro.serve.errors.ServiceClosedError`.  Should the
        drain loop itself die, whatever is still queued is failed with a
        :class:`~repro.serve.errors.ServiceClosedError` rather than left
        waiting forever, and the drain loop's error is re-raised.

        Every pool this service stood up is torn down deterministically:
        the private thread pool when the service owns one, or the shared
        engine's pools (thread *and* worker-process, via the engine's own
        resettable ``close()``) when serving reused them — a stopped
        service leaves no live executor threads or worker processes
        behind, while the engine itself stays usable (its pools are
        lazily recreated on next use).
        """
        if self._loop is None or self._closed:
            return
        self._closing = True
        self._wake.set()
        drain_error: Optional[BaseException] = None
        if self._drain_task is not None:
            try:
                await self._drain_task
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                drain_error = exc
        while self._tasks:
            await asyncio.gather(*list(self._tasks))
        # The drain loop only exits with an empty queue; anything still
        # here means it died mid-shutdown — fail the stragglers loudly
        # instead of stranding their futures.
        while len(self.batcher):
            for request in self.batcher.drain(self._clock(), force=True):
                if not request.future.done():
                    request.future.set_exception(ServiceClosedError(
                        "QueryService closed before this request could be "
                        "dispatched"))
                    self.stats.record_failure()
        self._closed = True
        if self._owns_pool:
            self._pool.shutdown(wait=True)
        else:
            engine_close = getattr(self.engine, "close", None)
            if engine_close is not None:
                await self._loop.run_in_executor(None, engine_close)
        if drain_error is not None:
            raise drain_error

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # admission / submission
    # ------------------------------------------------------------------
    def retry_after_hint(self) -> Optional[float]:
        """Estimated seconds until the queue drains below the high-water mark.

        ``queue depth / observed drain rate``, clamped to a sane band;
        ``None`` until the service has completed anything (no drain
        evidence to extrapolate from).  Attached to every
        :class:`ServiceOverloadedError` this service raises so the HTTP
        tier's 503 can carry a principled ``Retry-After``.
        """
        rate = self.stats.drain_rate()
        if rate <= 0.0:
            return None
        return min(max(len(self.batcher) / rate, 0.05), 60.0)

    def _admit(self, query, timeout=None,
               priority: str = DEFAULT_PRIORITY,
               allow_partial: Optional[bool] = None) -> QueuedRequest:
        self._require_running()
        if priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority class {priority!r}; expected one of "
                f"{PRIORITY_CLASSES}")
        if len(self.batcher) >= self.config.max_pending:
            self.stats.record_rejection()
            raise ServiceOverloadedError(
                f"request queue at its high-water mark "
                f"({self.config.max_pending} pending); retry later",
                retry_after=self.retry_after_hint())
        # The submit timeout becomes an absolute deadline at admission —
        # from here on, queue wait, batching linger, and engine legs all
        # draw down the same clock the client is waiting on.
        deadline = (Deadline.after(float(timeout), clock=self._clock)
                    if timeout is not None else None)
        request = QueuedRequest(query=query,
                                future=self._loop.create_future(),
                                enqueued_at=self._clock(),
                                deadline=deadline,
                                priority=priority,
                                allow_partial=allow_partial)
        self.batcher.append(request)
        self.stats.record_admission(priority)
        self._wake.set()
        return request

    async def submit(self, query, *, timeout=_UNSET,
                     priority: str = DEFAULT_PRIORITY,
                     allow_partial: Optional[bool] = None):
        """Admit one query; resolve with its engine result.

        ``timeout`` (seconds) overrides the config's ``default_timeout``
        for this request; ``None`` waits forever.  On expiry the request
        is abandoned — dropped at drain time if still queued, its result
        discarded if already in flight — and
        :class:`~repro.serve.errors.RequestTimeoutError` is raised.
        Cancelling the awaiting task likewise abandons the request.

        The timeout also rides into the engine as a deadline (when it
        supports one — see ``_dispatch``): scatter legs check it between
        shards and process workers' pipe waits are bounded by it, so a
        hung worker cannot keep burning engine capacity long after every
        client stopped waiting.

        ``priority`` picks the admission class (one of
        ``interactive``/``batch``/``background``): under backlog the
        batcher's weighted drain decides which classes ride the next
        micro-batch.  ``allow_partial=True`` opts in to a degraded answer
        over surviving shards (flagged ``degraded`` in ``extra``) when
        the engine supports it; the opt-in reaches the engine only for
        batches whose every live member opted in.
        """
        if timeout is _UNSET:
            timeout = self.config.default_timeout
        request = self._admit(query, timeout, priority, allow_partial)
        return await self._await_request(request, timeout)

    async def _await_request(self, request: QueuedRequest, timeout):
        """Await one admitted request under the submit timeout contract."""
        if timeout is _UNSET:
            timeout = self.config.default_timeout
        if timeout is None:
            return await request.future
        # Shield the future so the deadline path — not wait_for — cancels
        # it, strictly *after* marking the request timed out; otherwise a
        # concurrent drain could observe the bare cancellation and count
        # the same request as both cancelled and timed out.
        try:
            return await asyncio.wait_for(asyncio.shield(request.future),
                                          timeout)
        except asyncio.TimeoutError:
            request.timed_out = True
            self.stats.record_timeout()
            request.future.cancel()
            raise RequestTimeoutError(
                f"query timed out after {float(timeout):.4g}s in the "
                f"serving queue") from None
        except asyncio.CancelledError:
            request.future.cancel()
            raise

    async def submit_many(self, queries: Iterable, *, timeout=_UNSET,
                          priority: str = DEFAULT_PRIORITY,
                          allow_partial: Optional[bool] = None) -> List:
        """Fan one client's batch into the shared queue; gather in order.

        Admission is all-or-nothing: if the queue's high-water mark cuts
        the batch short, the already-admitted requests are abandoned and
        the admission error propagates.  ``timeout`` spans the whole
        batch; ``priority`` and ``allow_partial`` apply to every member
        (see :meth:`submit`).
        """
        if timeout is _UNSET:
            timeout = self.config.default_timeout
        requests: List[QueuedRequest] = []
        try:
            for query in queries:
                requests.append(
                    self._admit(query, timeout, priority, allow_partial))
        except ServeError:
            for request in requests:
                request.future.cancel()
            raise
        if timeout is None:
            return list(await asyncio.gather(
                *(request.future for request in requests)))
        # Shielded for the same reason as submit: mark each unresolved
        # request timed out before its future is cancelled.
        gathered = asyncio.gather(
            *(asyncio.shield(request.future) for request in requests))
        try:
            return list(await asyncio.wait_for(gathered, timeout))
        except asyncio.TimeoutError:
            for request in requests:
                if not request.future.done():
                    request.timed_out = True
                    self.stats.record_timeout()
                    request.future.cancel()
            raise RequestTimeoutError(
                f"batch timed out after {float(timeout):.4g}s in the "
                f"serving queue") from None
        except asyncio.CancelledError:
            for request in requests:
                if not request.future.done():
                    request.future.cancel()
            raise

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    async def submit_stream(self, query, *, timeout=_UNSET,
                            priority: str = DEFAULT_PRIORITY):
        """Execute one query, yielding verified top-k prefixes as frames.

        An async generator of ``("prefix", start_rank, pairs)`` frames —
        each carrying newly *verified* ``(tid, score)`` entries, i.e.
        ranks that provably cannot change no matter what the rest of the
        sweep finds — followed by one ``("final", result)`` frame whose
        result is bit-identical to a non-streaming :meth:`submit` answer
        for the same query.

        Streaming bypasses the micro-batcher (a stream cannot share a
        fused sweep) but honors everything else the dispatch path does:
        the engine concurrency semaphore, the writer gate, engine-error
        mapping, the submit timeout, and the service stats.  Engines
        whose ``execute`` cannot stream (scatter engines, duck-typed
        fakes) and result-cache hits produce a single final frame, which
        still satisfies the bit-identical contract.
        """
        if timeout is _UNSET:
            timeout = self.config.default_timeout
        self._require_running()
        if priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority class {priority!r}; expected one of "
                f"{PRIORITY_CLASSES}")
        if self._engine_execute is None:
            raise ServeError("this engine has no single-query execute; "
                             "streaming is unavailable")
        self.stats.record_admission(priority)
        started = self._clock()
        frames: asyncio.Queue = asyncio.Queue()
        loop = self._loop

        def on_progress(start: int, pairs) -> None:
            # Called on the engine's worker thread mid-sweep.
            loop.call_soon_threadsafe(
                frames.put_nowait, ("prefix", start, list(pairs)))

        def run_engine():
            if self._engine_takes_progress:
                return self._engine_execute(query, on_progress=on_progress)
            return self._engine_execute(query)

        async def produce() -> None:
            async with self._engine_sem:
                await self._engine_enter()
                try:
                    result = await self._in_executor(run_engine)
                    frames.put_nowait(("final", result))
                except Exception as exc:
                    frames.put_nowait(("error", self._map_engine_error(exc)))
                finally:
                    self._engine_exit()

        task = loop.create_task(produce())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        while True:
            if timeout is None:
                frame = await frames.get()
            else:
                remaining = float(timeout) - (self._clock() - started)
                try:
                    frame = await asyncio.wait_for(frames.get(),
                                                   max(remaining, 0.0))
                except asyncio.TimeoutError:
                    self.stats.record_timeout()
                    raise RequestTimeoutError(
                        f"stream timed out after {float(timeout):.4g}s"
                    ) from None
            kind = frame[0]
            if kind == "prefix":
                yield frame
            elif kind == "error":
                self.stats.record_failure()
                raise frame[1]
            else:
                result = frame[1]
                now = self._clock()
                result.extra.setdefault("queue_wait", 0.0)
                result.extra.setdefault("batch_size", 1.0)
                result.extra.setdefault("fused_group_size", 1.0)
                result.extra["streamed"] = 1.0
                self.stats.record_completion(0.0, now - started, priority)
                yield frame
                return

    # ------------------------------------------------------------------
    # drain loop / dispatch
    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        while True:
            now = self._clock()
            if self.batcher.due(now) or (self._closing and len(self.batcher)):
                batch = self.batcher.drain(now, force=self._closing)
                if batch:
                    task = self._loop.create_task(self._dispatch(batch))
                    self._tasks.add(task)
                    task.add_done_callback(self._tasks.discard)
                continue
            if self._closing:
                break
            deadline = self.batcher.next_deadline()
            timeout = None if deadline is None else max(deadline - now, 0.0)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    async def _dispatch(self, batch: List[QueuedRequest]) -> None:
        live: List[QueuedRequest] = []
        for request in batch:
            if request.future.done():
                # Abandoned while queued: timeouts were counted by the
                # submit path, everything else is a caller cancellation.
                if request.future.cancelled() and not request.timed_out:
                    self.stats.record_cancellation()
                continue
            live.append(request)
        if not live:
            return
        queries = [request.query for request in live]
        first_enqueued = min(request.enqueued_at for request in live)
        # An explain_analyze request carries its own root span; the
        # batch's engine spans parent under it so its tree is complete.
        # Otherwise the service tracer (null when tracing is off) roots a
        # serve.batch trace opened at the oldest admission.
        analyzed = next((request.span for request in live
                         if request.span is not None), None)
        batch_span = self.tracer.trace("serve.batch", start=first_enqueued)
        parent = analyzed if analyzed is not None else \
            (batch_span if batch_span else None)
        engine_call = self.engine.execute_many
        if parent is not None and self._engine_takes_span:
            # Explicit parenthood: contextvars do not cross
            # run_in_executor threads, a keyword does.
            engine_call = functools.partial(engine_call, parent_span=parent)
        if self._engine_takes_deadline:
            # Propagate a deadline only when every live member carries
            # one, and use the *latest*: the engine bound must never
            # fire before some member's own submit timeout would — a
            # shorter-deadline peer is already protected by its asyncio
            # wait, which abandons its future without killing the batch.
            deadlines = [request.deadline for request in live]
            if all(deadline is not None for deadline in deadlines):
                engine_call = functools.partial(
                    engine_call,
                    deadline=max(deadlines, key=lambda d: d.at))
        if self._engine_takes_partial:
            # Same unanimity rule as the deadline: degrading is opted
            # into per batch, and a member that did not ask for a partial
            # answer must never receive one.
            if live and all(request.allow_partial for request in live):
                engine_call = functools.partial(engine_call,
                                                allow_partial=True)
        async with self._engine_sem:
            await self._engine_enter()
            acquired: List[asyncio.Semaphore] = []
            try:
                if self._backend_sems:
                    names = await self._in_executor(self._route, queries)
                    for name in sorted(names):
                        sem = self._backend_sems.get(name)
                        if sem is not None:
                            await sem.acquire()
                            acquired.append(sem)
                dispatched_at = self._clock()
                if batch_span:
                    batch_span.set("batch_size", len(live))
                    (batch_span.child("serve.queue_wait",
                                      start=first_enqueued)
                     .finish(end=dispatched_at))
                if analyzed is not None:
                    for request in live:
                        if request.span is not None:
                            (request.span.child("serve.queue_wait",
                                                start=request.enqueued_at)
                             .set("batch_size", len(live))
                             .finish(end=dispatched_at))
                self.stats.record_batch(len(live))
                try:
                    results = await self._in_executor(engine_call, queries)
                    errors: dict = {}
                except PartialBatchError as exc:
                    # Failure containment (scatter layer): some positions
                    # failed, the rest completed — resolve per request
                    # instead of failing the whole batch.
                    results = exc.results
                    errors = exc.errors
            except Exception as exc:
                mapped = self._map_engine_error(exc)
                for request in live:
                    if not request.future.done():
                        request.future.set_exception(mapped)
                        self.stats.record_failure()
                    elif (request.future.cancelled()
                          and not request.timed_out):
                        self.stats.record_cancellation()
                batch_span.finish()
                return
            finally:
                for sem in acquired:
                    sem.release()
                self._engine_exit()
        now = self._clock()
        batch_span.finish(end=now)
        batch_size = float(len(live))
        for position, (request, result) in enumerate(zip(live, results)):
            error = errors.get(position)
            if error is not None:
                if not request.future.done():
                    request.future.set_exception(self._map_engine_error(error))
                    self.stats.record_failure()
                elif request.future.cancelled() and not request.timed_out:
                    self.stats.record_cancellation()
                continue
            queue_wait = dispatched_at - request.enqueued_at
            result.extra["queue_wait"] = queue_wait
            result.extra["batch_size"] = batch_size
            result.extra.setdefault("fused_group_size", 1.0)
            if not request.future.done():
                request.future.set_result(result)
                self.stats.record_completion(queue_wait,
                                             now - request.enqueued_at,
                                             request.priority)
            elif request.future.cancelled() and not request.timed_out:
                # Abandoned while the batch was already executing: the
                # result is discarded, but the cancellation still counts.
                self.stats.record_cancellation()

    def _map_engine_error(self, exc: Exception) -> Exception:
        """Type an engine failure for clients of the serving layer.

        Exhausted retries, open breakers, and hung-then-killed workers
        all surface from the engine as
        :class:`~repro.errors.ShardWorkerError`; clients of the service
        get the serving-layer :class:`ShardUnavailableError` instead
        (original attached as ``__cause__``).  An engine-side deadline
        miss becomes :class:`RequestTimeoutError` — the same type the
        submit path raises for a queue-side miss.  Everything else
        passes through untouched.
        """
        if isinstance(exc, ShardWorkerError):
            mapped: Exception = ShardUnavailableError(
                f"shard unavailable after engine-side recovery: {exc}")
            mapped.__cause__ = exc
            return mapped
        if isinstance(exc, DeadlineExceededError):
            mapped = RequestTimeoutError(
                f"request deadline exceeded inside the engine: {exc}")
            mapped.__cause__ = exc
            return mapped
        return exc

    def _current_pool(self) -> ThreadPoolExecutor:
        """The pool to dispatch on *right now* (engine pools can be grown)."""
        if self._ensure_pool is not None:
            return self._ensure_pool(reserve=self.config.engine_concurrency)
        return self._pool

    async def _in_executor(self, fn, *args):
        """``run_in_executor`` on the current pool, surviving a pool swap.

        A concurrent ``ensure_pool`` with a larger reserve (another
        service attaching to the same engine) can shut the fetched pool
        down between the fetch and the submit; that exact failure — and
        only it, identified by its message so an engine-raised
        ``RuntimeError`` is never swallowed — is retried once on the
        replacement pool.
        """
        try:
            return await self._loop.run_in_executor(self._current_pool(),
                                                    fn, *args)
        except RuntimeError as exc:
            if "after shutdown" not in str(exc):
                raise
            return await self._loop.run_in_executor(self._current_pool(),
                                                    fn, *args)

    def _route(self, queries: List) -> Set[str]:
        """Backend names this batch could occupy (worker-thread planning)."""
        plan_backends = getattr(self.engine, "plan_backends", None)
        if plan_backends is None:
            return set()
        return set(plan_backends(queries))

    # ------------------------------------------------------------------
    # engine/writer gate
    # ------------------------------------------------------------------
    async def _engine_enter(self) -> None:
        """Wait out any writer, then count this engine call as in flight.

        The re-check loop closes the race where a writer slips in between
        the event firing and this task resuming; the count update is
        synchronous after the final check, so a writer observing the
        engine idle can never miss a call that already passed the gate.
        """
        while not self._no_writer.is_set():
            await self._no_writer.wait()
        self._engine_calls += 1
        self._engine_idle.clear()

    def _engine_exit(self) -> None:
        self._engine_calls -= 1
        if self._engine_calls == 0:
            self._engine_idle.set()

    # ------------------------------------------------------------------
    # serialized write path
    # ------------------------------------------------------------------
    async def _mutate(self, apply: Callable[[], object]):
        """Run one mutation with the engine drained: the write contract.

        Writers serialize among themselves (``_mutation_lock``), bar new
        engine calls (``_no_writer``), wait for the in-flight ones to
        finish (``_engine_idle``), and only then mutate — so the
        invalidation hooks the mutation fires can never race a sweep.
        Requests admitted before the write but not yet dispatched simply
        execute after it, against the post-mutation data and caches.
        """
        self._require_running()
        async with self._mutation_lock:
            self._no_writer.clear()
            try:
                await self._engine_idle.wait()
                return await self._in_executor(apply)
            finally:
                self._no_writer.set()
                self._wake.set()

    def _require_running(self) -> None:
        if self._loop is None:
            raise ServiceClosedError(
                "QueryService is not running; enter it with 'async with' "
                "or call start() first")
        if self._closing:
            raise ServiceClosedError("QueryService is shutting down")

    async def insert(self, row: Mapping[str, object]) -> int:
        """Append ``row`` behind the drained engine; return its global tid."""
        self._require_running()
        row = dict(row)
        if self.manager is not None:
            return await self._mutate(lambda: self.manager.insert(row))
        if self.relation is not None:
            return await self._mutate(lambda: self._apply_unsharded_insert(row))
        raise ServeError(
            "this service has no write path: construct it over a scatter "
            "engine (or pass manager=...) or pass relation=... for the "
            "unsharded append path")

    def _apply_unsharded_insert(self, row: Mapping[str, object]) -> int:
        tid = self.relation.append(row)
        note = getattr(self.engine, "note_mutation", None)
        if note is not None:
            note(self.relation, row=row)
        else:
            self.engine.invalidate_results(row=row)
        return tid

    async def reshard(self, policy) -> None:
        """Re-split the managed relation under ``policy``, engine drained."""
        self._require_running()
        if self.manager is None:
            raise ServeError("reshard needs a ShardManager-backed service")
        await self._mutate(lambda: self.manager.reshard(policy))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The merged serving view: service counters + engine cache stats.

        Adds the live queue depth (``pending``) and the batcher's current
        adaptive linger (``current_linger``) to the
        :meth:`~repro.serve.stats.ServiceStats.snapshot` mapping.
        """
        snap = self.stats.snapshot(self.engine.cache_stats(),
                                   fused_baseline=self._fused_baseline)
        snap["pending"] = float(len(self.batcher))
        for name, depth in self.batcher.pending_by_class().items():
            snap[f"pending_{name}"] = float(depth)
        snap["current_linger"] = float(self.batcher.linger)
        return snap

    def metrics_snapshot(self) -> dict:
        """One namespaced ``{name: float}`` view across every layer.

        ``serve.*`` comes from this service's registry; the engine's own
        :meth:`metrics_snapshot` (which merges per-shard registries for a
        scatter engine) supplies ``engine.*`` / ``shard.*`` /
        ``planner.*``.  When the service and engine share one registry —
        the default — the shared names are emitted once, not doubled.
        """
        engine_snapshot = getattr(self.engine, "metrics_snapshot", None)
        if engine_snapshot is None:
            snap = self.metrics.snapshot()
        else:
            snap = dict(engine_snapshot())
            if self.metrics is not getattr(self.engine, "metrics", None):
                snap.update(self.metrics.snapshot())
        snap["serve.pending"] = float(len(self.batcher))
        for name, depth in self.batcher.pending_by_class().items():
            snap[f"serve.pending.{name}"] = float(depth)
        snap["serve.current_linger"] = float(self.batcher.linger)
        return snap

    def slow_queries(self) -> list:
        """Traces at or above ``config.slow_query_threshold`` (oldest
        first) — empty when tracing or the slow-query log is off."""
        return self.tracer.slow_queries()

    async def explain_analyze(self, query, *, timeout=_UNSET) -> str:
        """Serve ``query`` traced end to end and render its span tree.

        The request goes through the normal admission → micro-batch →
        dispatch path, so the rendered tree shows what serving *actually
        did*: the queue wait, the batch it rode in (with its size), the
        engine's plan(s) with per-candidate cost estimates, every scatter
        leg (skipped legs with reasons), fused-sweep attributed shares,
        and the gather — followed by estimated cost vs. actual tuples
        evaluated per backend.  A private always-on tracer is used, so
        this works with ``config.tracing`` off; peers sharing the batch
        are unaffected.
        """
        from repro.obs.explain import render_trace

        tracer = Tracer(ring_size=1, clock=self._clock)
        root = tracer.trace("serve.request")
        if timeout is _UNSET:
            timeout = self.config.default_timeout
        request = self._admit(query, timeout)
        request.span = root
        result = await self._await_request(request, timeout)
        root.finish()
        return render_trace(root.trace, result=result)
