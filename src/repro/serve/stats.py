"""Serving-side observability: counters, latency percentiles, fusion rates.

:class:`ServiceStats` is the service's own ledger — admissions,
rejections, completions, timeouts, batch sizes, and bounded reservoirs of
per-request latency and queue wait.  Its :meth:`~ServiceStats.snapshot`
merges the engine's ``cache_stats()`` (result-cache and fusion counters,
already aggregated across shards by
:meth:`~repro.shard.scatter.ScatterGatherExecutor.cache_stats`), so one
mapping answers "how is serving going" end to end.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Callable, Deque, Dict, Mapping, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 < q <= 100); 0.0 if empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[min(rank, len(ordered)) - 1])


class ServiceStats:
    """Counters and reservoirs a :class:`QueryService` records into.

    All recording methods run on the event-loop thread, so there is no
    locking here; the snapshot is a plain dict of floats in the same
    spirit as the engines' ``cache_stats()``.
    """

    def __init__(self, window: int = 2048,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._started = clock()
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timed_out = 0
        self.cancelled = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0
        self._latency: Deque[float] = deque(maxlen=window)
        self._queue_wait: Deque[float] = deque(maxlen=window)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_admission(self) -> None:
        self.submitted += 1

    def record_rejection(self) -> None:
        self.rejected += 1

    def record_timeout(self) -> None:
        self.timed_out += 1

    def record_cancellation(self) -> None:
        self.cancelled += 1

    def record_failure(self) -> None:
        self.failed += 1

    def record_batch(self, size: int) -> None:
        """One engine dispatch of ``size`` live requests."""
        self.batches += 1
        self.batched_requests += size

    def record_completion(self, queue_wait: float, latency: float) -> None:
        """One request resolved with a result."""
        self.completed += 1
        self._queue_wait.append(queue_wait)
        self._latency.append(latency)

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self, engine_stats: Optional[Mapping[str, float]] = None,
                 fused_baseline: float = 0.0) -> Dict[str, float]:
        """The merged serving view as one ``{name: float}`` mapping.

        Service-side keys: counters, ``throughput_qps`` (completions per
        second since construction), ``mean_batch_size``, and
        p50/p90/p99 of request latency and queue wait (seconds, over the
        retained window).  ``engine_stats`` — the engine's
        ``cache_stats()`` — is merged in as-is (lifetime counters), and
        feeds ``fusion_rate``: the fraction of service-dispatched queries
        answered through a fused group's shared sweep.  ``fused_baseline``
        is the engine's ``fused_queries`` before the service attached, so
        fusion the service did not cause (warm-ups, direct engine use) is
        excluded from the rate.
        """
        elapsed = max(self._clock() - self._started, 1e-9)
        latencies = list(self._latency)
        waits = list(self._queue_wait)
        snap: Dict[str, float] = {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "rejected": float(self.rejected),
            "timed_out": float(self.timed_out),
            "cancelled": float(self.cancelled),
            "failed": float(self.failed),
            "batches": float(self.batches),
            "batched_requests": float(self.batched_requests),
            "mean_batch_size": (self.batched_requests / self.batches
                                if self.batches else 0.0),
            "throughput_qps": self.completed / elapsed,
            "latency_p50": percentile(latencies, 50),
            "latency_p90": percentile(latencies, 90),
            "latency_p99": percentile(latencies, 99),
            "queue_wait_p50": percentile(waits, 50),
            "queue_wait_p90": percentile(waits, 90),
            "queue_wait_p99": percentile(waits, 99),
        }
        if engine_stats is not None:
            snap.update({name: float(value)
                         for name, value in engine_stats.items()})
            fused = max(0.0, float(engine_stats.get("fused_queries", 0.0))
                        - fused_baseline)
            snap["fusion_rate"] = (fused / self.batched_requests
                                   if self.batched_requests else 0.0)
        return snap
