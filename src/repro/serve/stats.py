"""Serving-side observability: counters, latency percentiles, fusion rates.

:class:`ServiceStats` is the service's own ledger — admissions,
rejections, completions, timeouts, batch sizes, and bounded reservoirs of
per-request latency and queue wait.  Since the ``repro.obs`` subsystem
landed, the ledger *is* a set of ``serve.*`` instruments in a shared
:class:`~repro.obs.metrics.MetricsRegistry`: the counters are registry
counters, and the latency/queue-wait reservoirs are the shared
:class:`~repro.obs.metrics.Histogram` (the duplicate percentile math this
module used to carry is deleted — :func:`~repro.obs.metrics.percentile`
is re-exported here for compatibility).  :meth:`~ServiceStats.snapshot`
still merges the engine's ``cache_stats()`` so one mapping answers "how
is serving going" end to end.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, percentile  # noqa: F401  (re-export)


class ServiceStats:
    """``serve.*`` instruments a :class:`QueryService` records into.

    Recording methods run on the event-loop thread; the registry's lock
    makes the instruments safe to snapshot from anywhere.  Counter values
    remain readable as plain ints (``stats.completed``), so the surface
    of the pre-registry ledger is preserved.
    """

    def __init__(self, window: int = 2048,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._clock = clock
        self._started = clock()
        #: The registry the counters live in — the service shares its
        #: engine's registry here so one snapshot spans every layer.
        self.metrics = metrics or MetricsRegistry()
        self._submitted = self.metrics.counter("serve.submitted")
        self._completed = self.metrics.counter("serve.completed")
        self._rejected = self.metrics.counter("serve.rejected")
        self._timed_out = self.metrics.counter("serve.timed_out")
        self._cancelled = self.metrics.counter("serve.cancelled")
        self._failed = self.metrics.counter("serve.failed")
        self._batches = self.metrics.counter("serve.batches")
        self._batched_requests = self.metrics.counter(
            "serve.batched_requests")
        self._latency = self.metrics.histogram("serve.latency_seconds",
                                               window=window)
        self._queue_wait = self.metrics.histogram(
            "serve.queue_wait_seconds", window=window)
        self._window = window
        # Per-priority-class instruments, created lazily on first use so
        # a service that never sees a class never publishes it.
        self._class_submitted: Dict[str, object] = {}
        self._class_completed: Dict[str, object] = {}
        self._class_queue_wait: Dict[str, object] = {}

    # -- int views of the counters (the pre-registry surface) ----------
    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    @property
    def timed_out(self) -> int:
        return int(self._timed_out.value)

    @property
    def cancelled(self) -> int:
        return int(self._cancelled.value)

    @property
    def failed(self) -> int:
        return int(self._failed.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def batched_requests(self) -> int:
        return int(self._batched_requests.value)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_admission(self, priority: Optional[str] = None) -> None:
        self._submitted.inc()
        if priority is not None:
            counter = self._class_submitted.get(priority)
            if counter is None:
                counter = self.metrics.counter(f"serve.submitted.{priority}")
                self._class_submitted[priority] = counter
            counter.inc()

    def record_rejection(self) -> None:
        self._rejected.inc()

    def record_timeout(self) -> None:
        self._timed_out.inc()

    def record_cancellation(self) -> None:
        self._cancelled.inc()

    def record_failure(self) -> None:
        self._failed.inc()

    def record_batch(self, size: int) -> None:
        """One engine dispatch of ``size`` live requests."""
        self._batches.inc()
        self._batched_requests.inc(float(size))

    def record_completion(self, queue_wait: float, latency: float,
                          priority: Optional[str] = None) -> None:
        """One request resolved with a result."""
        self._completed.inc()
        self._queue_wait.observe(queue_wait)
        self._latency.observe(latency)
        if priority is not None:
            counter = self._class_completed.get(priority)
            if counter is None:
                counter = self.metrics.counter(f"serve.completed.{priority}")
                self._class_completed[priority] = counter
            counter.inc()
            wait = self._class_queue_wait.get(priority)
            if wait is None:
                wait = self.metrics.histogram(
                    f"serve.queue_wait_seconds.{priority}",
                    window=self._window)
                self._class_queue_wait[priority] = wait
            wait.observe(queue_wait)

    def drain_rate(self) -> float:
        """Completions per second since construction (0.0 before any).

        The denominator admission control needs for its ``retry_after``
        hint: ``queue depth / drain rate`` estimates how long a rejected
        caller should back off before the backlog has drained.
        """
        elapsed = max(self._clock() - self._started, 1e-9)
        return self.completed / elapsed

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self, engine_stats: Optional[Mapping[str, float]] = None,
                 fused_baseline: float = 0.0) -> Dict[str, float]:
        """The merged serving view as one ``{name: float}`` mapping.

        Service-side keys: counters, ``throughput_qps`` (completions per
        second since construction), ``mean_batch_size``, and
        p50/p90/p99 of request latency and queue wait (seconds, over the
        retained histogram windows).  ``engine_stats`` — the engine's
        ``cache_stats()`` — is merged in as-is (lifetime counters), and
        feeds ``fusion_rate``: the fraction of service-dispatched queries
        answered through a fused group's shared sweep.  ``fused_baseline``
        is the engine's ``fused_queries`` before the service attached, so
        fusion the service did not cause (warm-ups, direct engine use) is
        excluded from the rate.
        """
        elapsed = max(self._clock() - self._started, 1e-9)
        latencies = self._latency.values()
        waits = self._queue_wait.values()
        batches = self.batches
        batched = self.batched_requests
        snap: Dict[str, float] = {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "rejected": float(self.rejected),
            "timed_out": float(self.timed_out),
            "cancelled": float(self.cancelled),
            "failed": float(self.failed),
            "batches": float(batches),
            "batched_requests": float(batched),
            "mean_batch_size": (batched / batches if batches else 0.0),
            "throughput_qps": self.completed / elapsed,
            "latency_p50": percentile(latencies, 50),
            "latency_p90": percentile(latencies, 90),
            "latency_p99": percentile(latencies, 99),
            "queue_wait_p50": percentile(waits, 50),
            "queue_wait_p90": percentile(waits, 90),
            "queue_wait_p99": percentile(waits, 99),
        }
        if engine_stats is not None:
            snap.update({name: float(value)
                         for name, value in engine_stats.items()})
            fused = max(0.0, float(engine_stats.get("fused_queries", 0.0))
                        - fused_baseline)
            snap["fusion_rate"] = (fused / batched if batched else 0.0)
        return snap
