"""Async serving layer: request queue + adaptive micro-batching.

The fourth layer of the stack.  A :class:`QueryService` fronts an engine
(:class:`repro.engine.Executor` or
:class:`repro.shard.ScatterGatherExecutor`) with an ``asyncio`` request
queue whose drain ticks execute **one** ``execute_many`` per flush — so
concurrent clients issuing same-function queries transparently share one
fused frontier sweep / R-tree traversal (the PR 4 batch-fusion path),
turning micro-batching from an amortization into an algorithmic win.

Usage::

    from repro.serve import QueryService, ServiceConfig

    async def main():
        config = ServiceConfig(max_batch_size=64, max_linger=0.005)
        async with QueryService(engine, config) as service:
            result = await service.submit(query)          # one client
            batch = await service.submit_many(queries)    # fan-in
            tid = await service.insert(row)               # serialized write
            print(service.stats_snapshot()["fusion_rate"])

Responses are bit-identical to calling the engine directly; their
``extra`` additionally records ``queue_wait``, ``batch_size``, and the
engine's ``fused_group_size``.
"""

from repro.serve.batcher import (
    DEFAULT_CLASS_WEIGHTS,
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    MicroBatcher,
    QueuedRequest,
)
from repro.serve.config import ServiceConfig
from repro.serve.errors import (
    RequestTimeoutError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardUnavailableError,
)
from repro.serve.service import QueryService
from repro.serve.stats import ServiceStats, percentile

__all__ = [
    "DEFAULT_CLASS_WEIGHTS",
    "DEFAULT_PRIORITY",
    "PRIORITY_CLASSES",
    "MicroBatcher",
    "QueryService",
    "QueuedRequest",
    "RequestTimeoutError",
    "ServeError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServiceConfig",
    "ServiceStats",
    "ShardUnavailableError",
    "percentile",
]
