"""Tunables of the async serving layer, one frozen dataclass."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.serve.errors import ServeError


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of a :class:`~repro.serve.service.QueryService`.

    Parameters
    ----------
    max_batch_size:
        Flush the request queue as soon as this many requests are pending
        (the size trigger of the micro-batcher).
    max_linger:
        Ceiling, in seconds, on how long the oldest pending request may
        wait before its batch flushes (the deadline trigger).  The
        batcher adapts its *current* linger within
        ``[min_linger, max_linger]`` — see
        :class:`~repro.serve.batcher.MicroBatcher` — so this bounds the
        queueing latency the batcher may add, it is not a fixed delay.
    min_linger:
        Floor of the adaptive linger (default 0: under sparse or
        saturating traffic the batcher stops waiting altogether).
    max_pending:
        Admission-control high-water mark: a submit finding this many
        requests already queued is rejected with
        :class:`~repro.serve.errors.ServiceOverloadedError` instead of
        growing the backlog without bound.
    default_timeout:
        Per-request timeout in seconds applied when ``submit`` /
        ``submit_many`` pass none explicitly; ``None`` waits forever.
    engine_concurrency:
        Maximum engine batches in flight at once (the global semaphore).
        The default of 1 serializes engine calls: the single-relation
        engine stacks share mutable structures (buffer pools, statistics
        catalogs) that are not hardened for concurrent batches, and a
        scatter engine parallelizes *inside* one call via its per-shard
        legs.  Raise it only for stacks known to tolerate concurrent
        batches.
    backend_limits:
        Optional per-backend concurrency limits, backend name → max
        batches concurrently touching that backend (``"ranking-cube"``,
        ``"table-scan"``, ``"scatter-gather"``, ...).  When non-empty,
        every batch is routed first (``plan_backends`` — an extra
        planning pass per dispatch; plans are cheap next to execution,
        but leave this empty when no limit is needed) and must hold the
        semaphore of each backend it can occupy before executing.
    latency_window:
        How many recent completions the latency/queue-wait percentile
        reservoirs retain.
    tracing:
        Record a span tree per dispatched batch (and per analyzed
        request) into the service tracer's ring buffer.  Off by default:
        the disabled tracer is a no-op object adding zero allocations to
        the hot path; enabling it costs < 5% on the serving benchmark
        (gated by ``benchmarks/bench_obs_overhead.py`` in CI).
    slow_query_threshold:
        Root-span duration (seconds) at or above which a completed trace
        is also kept in the slow-query log.  Setting it implies tracing
        even when ``tracing`` is False; ``None`` disables the log.
    trace_ring_size:
        How many completed traces the ring buffer retains.
    """

    max_batch_size: int = 64
    max_linger: float = 0.002
    min_linger: float = 0.0
    max_pending: int = 1024
    default_timeout: Optional[float] = None
    engine_concurrency: int = 1
    backend_limits: Mapping[str, int] = field(default_factory=dict)
    latency_window: int = 2048
    tracing: bool = False
    slow_query_threshold: Optional[float] = None
    trace_ring_size: int = 256

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ServeError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_linger < 0 or self.min_linger < 0:
            raise ServeError("linger bounds must be non-negative")
        if self.min_linger > self.max_linger:
            raise ServeError(
                f"min_linger {self.min_linger} exceeds max_linger "
                f"{self.max_linger}")
        if self.max_pending < 1:
            raise ServeError(
                f"max_pending must be >= 1, got {self.max_pending}")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ServeError("default_timeout must be positive or None")
        if self.engine_concurrency < 1:
            raise ServeError(
                f"engine_concurrency must be >= 1, got "
                f"{self.engine_concurrency}")
        if self.latency_window < 1:
            raise ServeError("latency_window must be >= 1")
        if (self.slow_query_threshold is not None
                and self.slow_query_threshold < 0):
            raise ServeError(
                "slow_query_threshold must be >= 0 (seconds) or None")
        if self.trace_ring_size < 1:
            raise ServeError(
                f"trace_ring_size must be >= 1, got {self.trace_ring_size}")
        for name, limit in dict(self.backend_limits).items():
            if int(limit) < 1:
                raise ServeError(
                    f"backend limit for {name!r} must be >= 1, got {limit}")
