"""The adaptive micro-batcher: accumulate requests, decide when to flush.

The serving layer's algorithmic win lives here.  Queued queries that share
a ranking function execute through the engine's fused ``execute_batch``
path as **one** grid frontier sweep / R-tree traversal per function group
(PR 4), so holding a request back for a few hundred microseconds can make
the whole batch cheaper than serving it alone.  The batcher trades that
win against latency with two triggers — flush when ``max_batch_size``
requests are pending, or when the *oldest* pending request has lingered
``linger`` seconds, whichever comes first — and adapts the linger between
flushes:

* a **size-triggered** flush means batches fill before the deadline
  matters: halve the linger (toward ``min_linger``) — under saturating
  traffic waiting adds latency without adding fusion;
* a deadline flush that drained a **single** request means no peer arrived
  within the window: halve the linger too — sparse traffic gains nothing
  from waiting;
* a deadline flush that drained a **partial batch** (more than one, less
  than half of ``max_batch_size``) means concurrent clients exist but the
  window is too short to collect them: double the linger (toward
  ``max_linger``) to fuse more per sweep.

The current linger never exceeds ``max_linger``, so the configuration's
deadline guarantee — flush on max-batch-size or max-linger, whichever
first — holds regardless of adaptation.

The batcher is deliberately synchronous and clock-injected (no asyncio in
this module): :class:`~repro.serve.service.QueryService` drives it from
the event loop, and tests drive it with a fake clock.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

#: Admission priority classes, most to least urgent.  The batcher drains
#: them by smooth weighted round-robin (:data:`DEFAULT_CLASS_WEIGHTS`),
#: so interactive traffic jumps most of the queue under saturation while
#: background work still makes progress instead of starving.
PRIORITY_CLASSES = ("interactive", "batch", "background")

DEFAULT_PRIORITY = "interactive"

#: Smooth-WRR weights: out of every 12 drained slots under full backlog,
#: 8 go to interactive, 3 to batch, 1 to background.
DEFAULT_CLASS_WEIGHTS: Dict[str, float] = {
    "interactive": 8.0, "batch": 3.0, "background": 1.0,
}


@dataclass
class QueuedRequest:
    """One admitted query waiting in (or drained from) the request queue."""

    query: object
    future: "asyncio.Future"
    enqueued_at: float
    #: Set by the submit path when its deadline elapsed, so the dispatcher
    #: can tell an abandoned-by-timeout request (already counted) from a
    #: caller-cancelled one (counted at drain time).
    timed_out: bool = field(default=False)
    #: Root span of an ``explain_analyze`` request: the dispatcher parents
    #: the batch's engine spans under it instead of the batch trace, so
    #: the analyzed request renders one tree from queue wait to gather.
    span: Optional[object] = field(default=None)
    #: The request's absolute :class:`~repro.fault.deadline.Deadline`,
    #: minted at admission from the submit timeout.  The dispatcher
    #: propagates it into the engine (when every live batch member has
    #: one) so scatter legs — including process workers' pipe waits —
    #: are bounded by the same clock the client is waiting on.
    deadline: Optional[object] = field(default=None)
    #: Admission priority class (one of :data:`PRIORITY_CLASSES`); decides
    #: which per-class queue the request waits in and how eagerly the
    #: weighted drain picks it when the backlog exceeds one batch.
    priority: str = field(default=DEFAULT_PRIORITY)
    #: Per-request degraded-answer opt-in: ``True`` asks the engine for a
    #: partial answer over surviving shards instead of an error.  The
    #: dispatcher propagates it engine-ward only when every live batch
    #: member opted in (mirroring the deadline rule).
    allow_partial: Optional[bool] = field(default=None)


class MicroBatcher:
    """Bounded accumulation of :class:`QueuedRequest` with adaptive flushes.

    Parameters
    ----------
    max_batch_size:
        Size trigger: a flush is due as soon as this many requests pend.
    max_linger / min_linger:
        Bounds of the adaptive linger window (seconds); the current value
        starts at ``max_linger``.
    clock:
        Monotonic time source (injected by tests).
    """

    def __init__(self, max_batch_size: int, max_linger: float,
                 min_linger: float = 0.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_batch_size = max_batch_size
        self.max_linger = max_linger
        self.min_linger = min_linger
        #: Current adaptive linger, always within [min_linger, max_linger].
        self.linger = max_linger
        self.clock = clock
        self._pending: Dict[str, Deque[QueuedRequest]] = {
            name: deque() for name in PRIORITY_CLASSES}
        self._weights = dict(DEFAULT_CLASS_WEIGHTS)
        self._credits: Dict[str, float] = {
            name: 0.0 for name in PRIORITY_CLASSES}

    def __len__(self) -> int:
        return sum(len(q) for q in self._pending.values())

    def append(self, request: QueuedRequest) -> None:
        """Admit one request to the tail of its priority class's queue."""
        priority = getattr(request, "priority", DEFAULT_PRIORITY)
        queue = self._pending.get(priority)
        if queue is None:
            raise ValueError(
                f"unknown priority class {priority!r}; expected one of "
                f"{PRIORITY_CLASSES}")
        queue.append(request)

    def pending_by_class(self) -> Dict[str, int]:
        """Live queue depth per priority class (the accounting view)."""
        return {name: len(queue) for name, queue in self._pending.items()}

    def size_ready(self) -> bool:
        """Whether the size trigger alone makes a flush due."""
        return len(self) >= self.max_batch_size

    def next_deadline(self) -> Optional[float]:
        """Absolute time the oldest pending request must flush by.

        ``None`` when the queue is empty.  Computed over the oldest
        request of *any* class — the linger guarantee is priority-blind,
        only batch composition under backlog is weighted — from the
        *current* adaptive linger, so the deadline a caller sleeps toward
        tightens and relaxes with the traffic.
        """
        oldest = self._oldest_enqueued()
        if oldest is None:
            return None
        return oldest + self.linger

    def _oldest_enqueued(self) -> Optional[float]:
        heads = [queue[0].enqueued_at
                 for queue in self._pending.values() if queue]
        return min(heads) if heads else None

    def due(self, now: Optional[float] = None) -> bool:
        """Whether a flush is due at ``now`` (size or deadline trigger)."""
        if not len(self):
            return False
        if self.size_ready():
            return True
        if now is None:
            now = self.clock()
        return now >= self.next_deadline()

    def _take_next(self) -> QueuedRequest:
        """Pop one request by smooth weighted round-robin across classes.

        Each pick adds every non-empty class's weight to its credit,
        takes the class with the most credit, and charges it the total —
        so over a sustained backlog the drained mix converges to the
        weight ratios, while a lone class degenerates to plain FIFO.
        Within a class order is strictly FIFO.
        """
        active = [name for name in PRIORITY_CLASSES if self._pending[name]]
        if len(active) == 1:
            return self._pending[active[0]].popleft()
        total = sum(self._weights[name] for name in active)
        for name in active:
            self._credits[name] += self._weights[name]
        best = max(active, key=lambda name: self._credits[name])
        self._credits[best] -= total
        return self._pending[best].popleft()

    def drain(self, now: Optional[float] = None,
              force: bool = False) -> List[QueuedRequest]:
        """Pop the next batch if one is due (or ``force``), else ``[]``.

        At most ``max_batch_size`` requests come out per call.  When the
        whole backlog fits in one batch the drain is exhaustive and order
        inside the batch is irrelevant (one engine call serves them all);
        when it does not, the weighted round-robin of :meth:`_take_next`
        decides *which* requests ride the next batch — that is where the
        priority classes earn their latency separation.  A forced drain
        (service shutdown) flushes without waiting for a trigger and
        without distorting the adaptation.
        """
        if now is None:
            now = self.clock()
        pending = len(self)
        if not pending:
            return []
        due = self.due(now)
        if not due and not force:
            return []
        size_triggered = self.size_ready()
        batch = [self._take_next()
                 for _ in range(min(self.max_batch_size, pending))]
        if due:
            self._adapt(size_triggered, len(batch))
        return batch

    def _adapt(self, size_triggered: bool, drained: int) -> None:
        """Move the linger window after a triggered flush (see module doc)."""
        if size_triggered or drained <= 1:
            self.linger = max(self.min_linger, self.linger / 2.0)
        elif drained * 2 < self.max_batch_size:
            self.linger = min(self.max_linger,
                              max(self.linger * 2.0, self.max_linger / 8.0))
