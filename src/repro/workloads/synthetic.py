"""Synthetic dataset and query generators (Sections 3.5.1, 4.4.1, 5.4.1, 7.3.1).

The generators reproduce the knobs of the paper's synthetic data:

* ``T`` — number of tuples,
* ``S`` (``Db``) — number of selection / boolean dimensions,
* ``R`` (``Dp``) — number of ranking / preference dimensions,
* ``C`` — cardinality of each selection dimension,
* ``distribution`` — ``"E"`` (uniform / independent), ``"C"`` (correlated)
  or ``"A"`` (anti-correlated) ranking values, the three distributions used
  by the skyline experiments.

Ranking values are scaled into ``[0, 1]`` — the thesis' default domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QueryError
from repro.functions.base import RankingFunction
from repro.functions.distance import SquaredDistanceFunction
from repro.functions.linear import LinearFunction, skewed_linear_function
from repro.query import Predicate, TopKQuery
from repro.storage.table import Relation, Schema

#: Valid distribution codes: uniform (E), correlated (C), anti-correlated (A).
DISTRIBUTIONS = ("E", "C", "A")


def selection_dim_names(count: int) -> Tuple[str, ...]:
    """``A1..AS`` selection dimension names."""
    return tuple(f"A{i + 1}" for i in range(count))


def ranking_dim_names(count: int) -> Tuple[str, ...]:
    """``N1..NR`` ranking dimension names."""
    return tuple(f"N{i + 1}" for i in range(count))


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic dataset (Table 3.8 / Section 4.4.1)."""

    num_tuples: int = 3000
    num_selection_dims: int = 3
    num_ranking_dims: int = 2
    cardinality: int = 20
    distribution: str = "E"
    seed: int = 7

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, got {self.distribution!r}")


def generate_relation(spec: SyntheticSpec, name: str = "R",
                      cardinalities: Optional[Sequence[int]] = None) -> Relation:
    """Generate a synthetic relation according to ``spec``.

    ``cardinalities`` overrides the per-dimension cardinality (used by the
    CoverType surrogate and the cardinality-sweep experiments).
    """
    rng = np.random.default_rng(spec.seed)
    sel_dims = selection_dim_names(spec.num_selection_dims)
    rank_dims = ranking_dim_names(spec.num_ranking_dims)
    schema = Schema(sel_dims, rank_dims)

    if cardinalities is None:
        cardinalities = [spec.cardinality] * spec.num_selection_dims
    if len(cardinalities) != spec.num_selection_dims:
        raise ValueError("cardinalities must align with the selection dimensions")
    selection = np.column_stack([
        rng.integers(0, max(1, card), size=spec.num_tuples)
        for card in cardinalities
    ]) if spec.num_selection_dims else np.empty((spec.num_tuples, 0), dtype=np.int64)

    ranking = _ranking_values(rng, spec.num_tuples, spec.num_ranking_dims,
                              spec.distribution)
    return Relation(schema, selection, ranking, name=name)


def _ranking_values(rng: np.random.Generator, count: int, dims: int,
                    distribution: str) -> np.ndarray:
    if dims == 0:
        return np.empty((count, 0), dtype=np.float64)
    if distribution == "E":
        return rng.random((count, dims))
    base = rng.random(count)
    noise = rng.normal(0.0, 0.05, size=(count, dims))
    if distribution == "C":
        values = base[:, None] + noise
    else:  # anti-correlated: coordinates sum to roughly a constant
        values = np.empty((count, dims))
        share = rng.dirichlet(np.ones(dims), size=count)
        values = share * (0.8 + 0.4 * base)[:, None] + noise * 0.2
    low = values.min()
    high = values.max()
    if high <= low:
        high = low + 1.0
    return (values - low) / (high - low)


@dataclass(frozen=True)
class QuerySpec:
    """Parameters of the random query workload (Table 3.9)."""

    k: int = 10
    num_selection_conditions: int = 2
    num_ranking_dims: int = 2
    skewness: float = 1.0
    function_kind: str = "linear"  # "linear" or "distance"
    seed: int = 13


def generate_queries(relation: Relation, spec: QuerySpec, count: int = 20
                     ) -> List[TopKQuery]:
    """Generate ``count`` random top-k queries over ``relation``."""
    rng = np.random.default_rng(spec.seed)
    if spec.num_selection_conditions > len(relation.selection_dims):
        raise QueryError("more selection conditions requested than dimensions exist")
    if spec.num_ranking_dims > len(relation.ranking_dims):
        raise QueryError("more ranking dimensions requested than exist")
    queries: List[TopKQuery] = []
    for _ in range(count):
        sel_dims = list(rng.choice(relation.selection_dims,
                                   size=spec.num_selection_conditions, replace=False))
        conditions = {}
        for dim in sel_dims:
            column = relation.selection_column(dim)
            conditions[dim] = int(column[rng.integers(0, len(column))])
        rank_dims = list(rng.choice(relation.ranking_dims,
                                    size=spec.num_ranking_dims, replace=False))
        function = make_ranking_function(rank_dims, spec.function_kind,
                                         spec.skewness, rng)
        queries.append(TopKQuery(Predicate.of(conditions), function, spec.k))
    return queries


def make_ranking_function(dims: Sequence[str], kind: str, skewness: float,
                          rng: Optional[np.random.Generator] = None) -> RankingFunction:
    """Build a random ranking function of the requested kind."""
    rng = rng or np.random.default_rng(0)
    if kind == "linear":
        return skewed_linear_function(list(dims), skewness, rng=rng)
    if kind == "distance":
        targets = rng.random(len(dims))
        return SquaredDistanceFunction(list(dims), targets.tolist())
    raise QueryError(f"unknown ranking function kind {kind!r}")


def skewed_planner_workload(relation: Relation, seed: int = 29,
                            count: int = 36) -> List[TopKQuery]:
    """A routing-sensitive top-k mix for planner-quality comparisons.

    The workload deliberately skews toward the query shapes where the
    right access method depends on the data, cycling three families:

    * *broad* — empty or single-dimension predicates with small ``k``,
      where a branch-and-bound index touches far fewer tuples than a
      block-granular cube;
    * *selective* — two-dimension predicates with moderate selectivity,
      the grid cube's home turf;
    * *absent* — predicate values provably outside every dimension's value
      set, where statistics alone answer the query.

    Functions are skewed linear (skewness 3), so weight mass concentrates
    on one dimension — the paper's hard case for uniform partitions.
    Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    sel_dims = list(relation.selection_dims)
    rank_dims = list(relation.ranking_dims)
    queries: List[TopKQuery] = []
    ks = (1, 5, 10)
    for i in range(count):
        # Decorrelated from the family cycle below, so every family runs
        # under every k.
        k = ks[(i // 3) % len(ks)]
        function = skewed_linear_function(
            list(rng.permutation(rank_dims)), 3.0, rng=rng)
        family = i % 3
        if family == 0:  # broad
            conditions: Dict[str, int] = {}
            if i % 6 == 3 and sel_dims:
                dim = sel_dims[int(rng.integers(0, len(sel_dims)))]
                column = relation.selection_column(dim)
                conditions[dim] = int(column[rng.integers(0, len(column))])
        elif family == 1:  # selective
            dims = list(rng.choice(sel_dims, size=min(2, len(sel_dims)),
                                   replace=False))
            tid = int(rng.integers(0, relation.num_tuples))
            values = relation.selection_values(tid)
            conditions = {dim: values[dim] for dim in dims}
        else:  # absent: values no tuple carries
            dim = sel_dims[i % len(sel_dims)]
            absent = int(relation.selection_column(dim).max()) + 1 + i
            conditions = {dim: absent}
        queries.append(TopKQuery(Predicate.of(conditions), function, k))
    return queries


def random_predicate(relation: Relation, num_conditions: int,
                     rng: Optional[np.random.Generator] = None) -> Predicate:
    """A random equality predicate with values drawn from actual tuples."""
    rng = rng or np.random.default_rng(0)
    dims = list(rng.choice(relation.selection_dims, size=num_conditions, replace=False))
    tid = int(rng.integers(0, relation.num_tuples))
    values = relation.selection_values(tid)
    return Predicate.of({dim: values[dim] for dim in dims})
