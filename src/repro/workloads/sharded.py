"""Workload helpers for the sharded engine: pruned-predicate query sets.

A range-sharded relation answers a query touching one value of the sharding
dimension by consulting a single shard.  The helpers here build exactly
that kind of workload — one query per distinct value of a dimension — so
benchmarks and tests can drive shard pruning deterministically, plus a
convenience constructor wiring relation → manager → scatter/gather engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.functions.base import RankingFunction
from repro.functions.linear import sum_function
from repro.query import Predicate, TopKQuery
from repro.storage.table import Relation


def pruned_predicate_queries(relation: Relation, dim: str, k: int = 10,
                             function: Optional[RankingFunction] = None,
                             values: Optional[Sequence[int]] = None,
                             ) -> List[TopKQuery]:
    """One top-k query per value of selection dimension ``dim``.

    Each query's predicate pins ``dim`` to a single value, so on a relation
    range-sharded by ``dim`` every query is answerable by the one shard
    whose range contains that value — the workload that isolates the win
    from statistics-driven shard pruning.
    """
    if function is None:
        function = sum_function(list(relation.ranking_dims))
    if values is None:
        values = [int(v) for v in np.unique(relation.selection_column(dim))]
    return [TopKQuery(Predicate.of({dim: value}), function, k)
            for value in values]


def make_sharded_engine(relation: Relation, num_shards: int,
                        range_dim: Optional[str] = None,
                        parallel: bool = False,
                        scatter: str = "threads",
                        retry_policy=None,
                        breaker_policy=None,
                        fault_injector=None,
                        allow_partial: bool = False,
                        **executor_kwargs: object):
    """Wire a relation into a ready-to-query scatter/gather engine.

    ``range_dim`` selects equi-width range sharding on that dimension
    (enabling predicate pruning); ``None`` falls back to hash-by-row.
    ``scatter`` picks the leg runtime: ``"threads"`` (the in-process
    :class:`~repro.shard.scatter.ScatterGatherExecutor`) or
    ``"processes"`` (:class:`~repro.shard.scatter.ProcessScatterExecutor`
    — heavy legs in per-shard worker processes over shared memory, with
    the cost model deciding the crossover per scatter).  Returns
    ``(manager, engine)``; call ``engine.close()`` (or use the engine as
    a context manager) when done to tear its pools/workers down.

    The fault-tolerance kwargs (``retry_policy``, ``breaker_policy``,
    ``fault_injector``, ``allow_partial`` — see :mod:`repro.fault`) are
    forwarded to the executor; everything else in ``executor_kwargs``
    configures the per-shard engine stacks through the manager.
    """
    from repro.shard import (
        HashShardingPolicy,
        ProcessScatterExecutor,
        RangeShardingPolicy,
        ScatterGatherExecutor,
        ShardManager,
    )

    if scatter not in ("threads", "processes"):
        raise ValueError(
            f"scatter must be 'threads' or 'processes', got {scatter!r}")
    if range_dim is None:
        policy = HashShardingPolicy(num_shards)
    else:
        policy = RangeShardingPolicy(relation, range_dim, num_shards)
    manager = ShardManager(relation, policy, **executor_kwargs)
    executor_cls = (ProcessScatterExecutor if scatter == "processes"
                    else ScatterGatherExecutor)
    return manager, executor_cls(manager, parallel=parallel,
                                 retry_policy=retry_policy,
                                 breaker_policy=breaker_policy,
                                 fault_injector=fault_injector,
                                 allow_partial=allow_partial)
