"""Workload generators: synthetic datasets, query workloads, CoverType surrogate."""

from repro.workloads.covertype import (
    COVERTYPE_RANKING_CARDINALITIES,
    COVERTYPE_SELECTION_CARDINALITIES,
    make_covertype_like,
)
from repro.workloads.serving import (
    distinct_serving_queries,
    serving_client_queries,
)
from repro.workloads.sharded import (
    make_sharded_engine,
    pruned_predicate_queries,
)
from repro.workloads.synthetic import (
    DISTRIBUTIONS,
    QuerySpec,
    SyntheticSpec,
    generate_queries,
    generate_relation,
    make_ranking_function,
    random_predicate,
    ranking_dim_names,
    selection_dim_names,
    skewed_planner_workload,
)

__all__ = [
    "COVERTYPE_RANKING_CARDINALITIES",
    "COVERTYPE_SELECTION_CARDINALITIES",
    "make_covertype_like",
    "DISTRIBUTIONS",
    "QuerySpec",
    "SyntheticSpec",
    "distinct_serving_queries",
    "generate_queries",
    "generate_relation",
    "make_ranking_function",
    "make_sharded_engine",
    "pruned_predicate_queries",
    "random_predicate",
    "ranking_dim_names",
    "selection_dim_names",
    "serving_client_queries",
    "skewed_planner_workload",
]
