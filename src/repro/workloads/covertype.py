"""CoverType-like surrogate dataset.

The paper's "real data" experiments use the UCI Forest CoverType dataset:
581,012 points, from which 3 quantitative attributes (cardinalities 1,989 /
5,787 / 5,827) serve as ranking dimensions and 12 attributes (cardinalities
255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2) as selection dimensions
(Sections 3.5.1 and 4.4.1).  This environment has no network access, so
:func:`make_covertype_like` synthesizes a dataset with the same schema
shape: identical selection-dimension cardinalities (with a skewed value
distribution, as in the real data) and three correlated, coarsely quantized
ranking dimensions.  The experiments only exercise the cardinality profile
and value correlation of the real data, which the surrogate preserves; this
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.storage.table import Relation, Schema

#: Selection-dimension cardinalities of the Forest CoverType configuration.
COVERTYPE_SELECTION_CARDINALITIES: Tuple[int, ...] = (
    255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2)

#: Ranking-dimension cardinalities (distinct-value counts) of the three
#: quantitative attributes used by the paper.
COVERTYPE_RANKING_CARDINALITIES: Tuple[int, ...] = (1989, 5787, 5827)


def make_covertype_like(num_tuples: int = 20000, seed: int = 42,
                        name: str = "covertype") -> Relation:
    """Synthesize a relation with the CoverType schema shape.

    Selection values follow a Zipf-like skew (real categorical attributes
    are heavily skewed); ranking values are correlated elevation-like
    quantities quantized to the real attributes' distinct-value counts and
    scaled into ``[0, 1]``.
    """
    rng = np.random.default_rng(seed)
    sel_dims = tuple(f"A{i + 1}" for i in range(len(COVERTYPE_SELECTION_CARDINALITIES)))
    rank_dims = ("N1", "N2", "N3")
    schema = Schema(sel_dims, rank_dims)

    selection_columns = []
    for cardinality in COVERTYPE_SELECTION_CARDINALITIES:
        weights = 1.0 / np.arange(1, cardinality + 1) ** 0.8
        weights /= weights.sum()
        selection_columns.append(
            rng.choice(cardinality, size=num_tuples, p=weights))
    selection = np.column_stack(selection_columns)

    base = rng.normal(0.55, 0.18, size=num_tuples)
    ranking_columns = []
    for cardinality in COVERTYPE_RANKING_CARDINALITIES:
        column = base + rng.normal(0.0, 0.12, size=num_tuples)
        column = np.clip(column, 0.0, 1.0)
        quantized = np.round(column * (cardinality - 1)) / (cardinality - 1)
        ranking_columns.append(quantized)
    ranking = np.column_stack(ranking_columns)
    return Relation(schema, selection, ranking, name=name)
