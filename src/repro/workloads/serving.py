"""Serving workloads: concurrent clients sharing a few ranking functions.

The serving layer's sweet spot is many independent clients issuing ad-hoc
top-k queries whose ranking functions are drawn from a small shared set —
exactly the traffic an adaptive micro-batcher can fuse into one frontier
sweep per function group.  :func:`serving_client_queries` builds that
shape deterministically; :func:`distinct_serving_queries` builds the
repeat-free variant benchmarks use to isolate the fusion win from
result-cache hits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.functions.linear import LinearFunction
from repro.query import Predicate, TopKQuery
from repro.storage.table import Relation


def _shared_functions(relation: Relation, num_functions: int,
                      rng: np.random.Generator) -> List[LinearFunction]:
    dims = list(relation.ranking_dims)
    return [LinearFunction(dims,
                           [float(w) for w in rng.uniform(0.5, 3.0, len(dims))])
            for _ in range(num_functions)]


def serving_client_queries(relation: Relation, num_clients: int = 8,
                           per_client: int = 6, num_functions: int = 2,
                           dim: str = "A1",
                           k_choices: Sequence[int] = (1, 5, 10),
                           empty_predicate_share: float = 0.3,
                           seed: int = 97) -> List[List[TopKQuery]]:
    """One query stream per client, functions drawn from a shared pool.

    Each query pins ``dim`` to a random value (or, with
    ``empty_predicate_share`` probability, uses the empty predicate) and
    ranks by one of ``num_functions`` shared linear functions — so
    concurrent streams repeat logical queries (result-cache traffic) *and*
    share functions across distinct queries (fusion traffic).
    """
    rng = np.random.default_rng(seed)
    functions = _shared_functions(relation, num_functions, rng)
    values = np.unique(relation.selection_column(dim))
    clients: List[List[TopKQuery]] = []
    for _ in range(num_clients):
        stream: List[TopKQuery] = []
        for _ in range(per_client):
            function = functions[int(rng.integers(len(functions)))]
            k = int(k_choices[int(rng.integers(len(k_choices)))])
            if rng.random() < empty_predicate_share:
                predicate = Predicate.of()
            else:
                predicate = Predicate.of(
                    {dim: int(values[int(rng.integers(len(values)))])})
            stream.append(TopKQuery(predicate, function, k))
        clients.append(stream)
    return clients


def distinct_serving_queries(relation: Relation, num_functions: int = 2,
                             dim: str = "A1",
                             k_choices: Sequence[int] = (1, 3, 5, 10, 20),
                             values: Optional[Sequence[int]] = None,
                             seed: int = 131) -> List[TopKQuery]:
    """Every (predicate, k, function) combination exactly once.

    No logical repeats means no result-cache hits on either side of a
    comparison — any work saved by batching is the fused sweeps' doing,
    which is what the serving benchmark wants to gate.
    """
    rng = np.random.default_rng(seed)
    functions = _shared_functions(relation, num_functions, rng)
    if values is None:
        values = [int(v) for v in np.unique(relation.selection_column(dim))]
    queries: List[TopKQuery] = []
    for function in functions:
        for k in k_choices:
            queries.append(TopKQuery(Predicate.of(), function, int(k)))
        for value in values:
            queries.append(TopKQuery(Predicate.of({dim: int(value)}),
                                     function, int(k_choices[0])))
    return queries
