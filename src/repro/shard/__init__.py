"""Sharded execution: shard manager, statistics-driven pruning, scatter/gather.

This package scales the single-relation engine horizontally without new
entry points:

* :class:`~repro.shard.policy.ShardingPolicy` — how rows spread over N
  shards (:class:`~repro.shard.policy.HashShardingPolicy` hash-by-row, or
  :class:`~repro.shard.policy.RangeShardingPolicy` contiguous value ranges
  via the equi-width / equi-depth partitioners);
* :class:`~repro.shard.manager.ShardManager` — materializes the per-shard
  sub-relations, their :class:`~repro.shard.stats.ShardStatistics`, and
  lazily-built per-shard engine stacks (``Executor.for_relation``), and
  routes ``insert``/``reshard`` with cache invalidation;
* :class:`~repro.shard.scatter.ScatterGatherExecutor` — the same
  ``execute`` / ``execute_many`` / ``plan`` / ``explain`` surface as
  :class:`repro.engine.Executor`: statistics-prune shards, scatter the
  query (optionally on a thread pool), k-way-merge top-k answers under the
  canonical ``(score, tid)`` order, and re-check skylines for cross-shard
  dominance;
* :class:`~repro.shard.scatter.ProcessScatterExecutor` — the same surface
  again, but heavy legs run in long-lived per-shard worker processes
  (:class:`~repro.shard.worker.ShardWorker`) over shared-memory copies of
  the shard data, so Python scoring is no longer capped at one core; the
  cost model prices the thread/process crossover per scatter.

Usage::

    from repro.shard import (
        HashShardingPolicy, RangeShardingPolicy, ScatterGatherExecutor,
        ShardManager,
    )

    manager = ShardManager(relation, RangeShardingPolicy(relation, "A1", 4))
    engine = ScatterGatherExecutor(manager, parallel=True)
    result = engine.execute(query)          # identical to the unsharded answer
    print(result.extra["shards_pruned"])    # why shards were skipped
    print(result.extra["shard_backends"])   # what each consulted shard ran
"""

from repro.shard.manager import Shard, ShardManager
from repro.shard.policy import (
    HashShardingPolicy,
    RangeShardingPolicy,
    ShardingPolicy,
)
from repro.shard.scatter import ProcessScatterExecutor, ScatterGatherExecutor
from repro.shard.stats import ShardStatistics
from repro.shard.worker import ShardWorker

__all__ = [
    "HashShardingPolicy",
    "ProcessScatterExecutor",
    "RangeShardingPolicy",
    "ScatterGatherExecutor",
    "Shard",
    "ShardManager",
    "ShardStatistics",
    "ShardWorker",
    "ShardingPolicy",
]
