"""Per-shard worker processes: the GIL-free side of process scatter.

The thread-pool scatter caps Python scoring at one core no matter how many
shards exist.  This module moves each shard's engine stack into a
long-lived worker *process*:

* the shard's columnar block data (its selection and ranking matrices) is
  shipped **once** at spawn time into
  :mod:`multiprocessing.shared_memory`-backed numpy arrays — scatter legs
  send only pickled queries over a pipe and gather only top-k tuples,
  never the relation;
* the worker builds its :class:`~repro.engine.Executor` lazily on the
  first request, exactly like the manager's lazy in-process stacks — a
  worker whose shard every query prunes never pays index construction;
* every reply rides the worker-side observability back to the parent: the
  worker engine's :class:`~repro.obs.metrics.MetricsRegistry` state
  (raw histogram reservoirs, so merged percentiles pool correctly) and
  its ``cache_stats()`` mapping.

The request/reply protocol is strictly synchronous per worker — one
in-flight request per pipe, serialized by :class:`ShardWorker`'s lock —
and crash-safe: a killed worker surfaces as
:class:`~repro.errors.ShardWorkerError` (the pipe reports end-of-file
immediately), never as a hang.  A *wedged* worker (alive but not
answering) is bounded too: ``recv_timeout`` caps every reply wait, and
a worker that misses it is killed and reported with
``ShardWorkerError.timed_out`` set — the scatter executor respawns it
on the next leg.  :class:`ShardWorker.close` is deterministic: ask the
worker to exit, escalate to ``terminate`` if it does not, and unlink
the shared memory either way.

For chaos testing, a :class:`~repro.fault.inject.FaultInjector` can be
attached: leg requests then deterministically suffer pre/post-leg
worker kills, real hung pipes (the worker naps through the ``hang``
op), and discarded "corrupted" replies — every failure the retry and
breaker layers must recover from, replayable from a seed.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ShardWorkerError
from repro.storage.table import Relation, Schema

#: Operations a worker understands.  ``execute``/``execute_many``/``plan``
#: are the engine front-door surface; ``invalidate`` broadcasts the
#: manager's cache invalidation (predicate-aware when a row is attached);
#: ``ping`` checks liveness; ``hang`` naps (fault injection: a simulated
#: wedge the bounded recv must catch); ``close`` asks the worker to exit
#: its loop.
_OPS = ("execute", "execute_many", "plan", "invalidate", "ping", "hang",
        "close")

#: Leg-shaped operations the fault injector may sabotage.  Lifecycle and
#: invalidation traffic is never injected — chaos must not break the
#: write path's correctness contract, only exercise leg recovery.
_INJECTABLE_OPS = ("execute", "execute_many")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its shard: small and picklable.

    The relation itself travels out-of-band through the two named shared
    memory blocks; the spec carries only the schema, the block names and
    shapes, and the ``Executor.for_relation`` keyword arguments.
    """

    schema: Schema
    relation_name: str
    selection_shm: str
    selection_shape: Tuple[int, int]
    ranking_shm: str
    ranking_shape: Tuple[int, int]
    executor_kwargs: Tuple[Tuple[str, object], ...]


def shard_worker_main(conn, spec: WorkerSpec) -> None:
    """Worker-process entry point: attach the shard, serve the pipe.

    Runs until the parent sends ``close`` or its end of the pipe
    disappears (parent exit), then detaches from the shared memory.  Any
    exception an operation raises is shipped back as a reply — the worker
    itself stays up, mirroring how an in-process engine survives a failed
    query.
    """
    from multiprocessing.shared_memory import SharedMemory

    from repro.engine import Executor

    # On Python <= 3.12 attaching re-registers the block with the resource
    # tracker; workers share the parent's tracker process (the fd rides the
    # spawn preparation data) and its cache is a set, so the duplicate
    # registration is a no-op and the parent's unlink cleans it up — the
    # worker must NOT unregister, or it would strip the parent's own entry.
    sel_shm = SharedMemory(name=spec.selection_shm)
    rank_shm = SharedMemory(name=spec.ranking_shm)
    selection = np.ndarray(spec.selection_shape, dtype=np.int64,
                           buffer=sel_shm.buf)
    ranking = np.ndarray(spec.ranking_shape, dtype=np.float64,
                         buffer=rank_shm.buf)
    relation = Relation(spec.schema, selection, ranking,
                        name=spec.relation_name)
    executor: Optional[Executor] = None
    try:
        while True:
            try:
                op, payload = conn.recv()
            except (EOFError, OSError):
                break
            if op == "close":
                conn.send(("ok", None, None))
                break
            try:
                if op == "invalidate":
                    if executor is not None:
                        executor.invalidate_results(row=payload)
                    out = None
                elif op == "ping":
                    out = relation.num_tuples
                elif op == "hang":
                    # Fault injection: a genuine wedge.  The worker naps
                    # through the request, so only the parent's bounded
                    # recv (not a cooperative error reply) can surface it.
                    time.sleep(float(payload))
                    out = None
                elif op in ("execute", "execute_many", "plan"):
                    if executor is None:
                        executor = Executor.for_relation(
                            relation, **dict(spec.executor_kwargs))
                    out = getattr(executor, op)(payload)
                else:
                    raise ShardWorkerError(f"unknown worker op {op!r}")
                stats = None
                if executor is not None:
                    stats = (executor.metrics.state(),
                             dict(executor.cache_stats()))
                conn.send(("ok", out, stats))
            except Exception as exc:  # ship the failure, stay alive
                try:
                    pickle.dumps(exc)
                    conn.send(("error", exc, None))
                except Exception:
                    conn.send(("error",
                               ShardWorkerError(
                                   f"{type(exc).__name__}: {exc}"), None))
    finally:
        # Drop the arrays' buffer views before detaching, otherwise
        # SharedMemory.close() raises about exported memoryview pointers.
        del selection, ranking, relation, executor
        sel_shm.close()
        rank_shm.close()
        try:
            conn.close()
        except OSError:
            pass


class ShardWorker:
    """Parent-side handle of one shard's worker process.

    Spawning copies the shard's matrices into two fresh shared-memory
    blocks (this is the *only* time relation data crosses the process
    boundary) and starts the worker on the configured multiprocessing
    context.  :meth:`request` is the synchronous RPC surface; it returns
    ``(result, observability)`` where observability is the worker's
    ``(metrics state, cache stats)`` pair or ``None`` before the worker
    engine exists.

    ``relation_id``/``num_rows`` snapshot the shard the worker was built
    over; :class:`~repro.shard.scatter.ProcessScatterExecutor` compares
    them after every mutation to decide between a cheap ``invalidate``
    broadcast (data unchanged) and a teardown (the shard grew or was
    replaced — the worker's shared-memory copy is stale).

    ``recv_timeout`` bounds every reply wait (per-request ``timeout``
    overrides it, e.g. from a request deadline): a worker that misses
    the bound is killed and reported with a ``timed_out`` error, so a
    wedged worker can never stall the parent indefinitely.  ``injector``
    attaches deterministic chaos to leg requests only.
    """

    def __init__(self, shard, executor_kwargs: Dict[str, object],
                 ctx: multiprocessing.context.BaseContext,
                 recv_timeout: Optional[float] = None,
                 injector=None) -> None:
        from multiprocessing.shared_memory import SharedMemory

        relation = shard.relation
        self.index = int(shard.index)
        self.recv_timeout = recv_timeout
        self._injector = injector
        self.relation_id = id(relation)
        self.num_rows = int(relation.num_tuples)
        self._lock = threading.Lock()
        self._alive = False
        selection = np.ascontiguousarray(relation.selection_matrix(),
                                         dtype=np.int64)
        ranking = np.ascontiguousarray(relation.ranking_matrix(),
                                       dtype=np.float64)
        # A zero-row shard still needs a 1-byte block: shm size must be > 0.
        self._sel_shm = SharedMemory(create=True,
                                     size=max(1, selection.nbytes))
        self._rank_shm = SharedMemory(create=True,
                                      size=max(1, ranking.nbytes))
        if selection.size:
            np.ndarray(selection.shape, dtype=np.int64,
                       buffer=self._sel_shm.buf)[:] = selection
        if ranking.size:
            np.ndarray(ranking.shape, dtype=np.float64,
                       buffer=self._rank_shm.buf)[:] = ranking
        spec = WorkerSpec(
            schema=relation.schema,
            relation_name=relation.name,
            selection_shm=self._sel_shm.name,
            selection_shape=tuple(selection.shape),
            ranking_shm=self._rank_shm.name,
            ranking_shape=tuple(ranking.shape),
            executor_kwargs=tuple(sorted(executor_kwargs.items())),
        )
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=shard_worker_main,
                                   args=(child_conn, spec),
                                   name=f"repro-shard-worker-{self.index}",
                                   daemon=True)
        self.process.start()
        child_conn.close()
        self._alive = True

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def request(self, op: str, payload=None,
                timeout: Optional[float] = None):
        """Send one operation and wait (boundedly) for its reply.

        ``timeout`` overrides the worker's ``recv_timeout`` for this
        request — the scatter layer passes the request deadline's
        remaining time here, so a per-request deadline tightens the
        bound and a hung worker is detected within it.

        Raises :class:`~repro.errors.ShardWorkerError` when the worker
        process died (the pipe EOFs immediately — a killed worker is a
        clear error, never a hang) or missed the reply bound (the wedged
        worker is killed; the error carries ``timed_out=True``), and
        re-raises, in the parent, any exception the operation itself
        raised in the worker.
        """
        effective = timeout if timeout is not None else self.recv_timeout
        crash_pre = hang = crash_post = corrupt = False
        injector = self._injector
        if injector is not None and op in _INJECTABLE_OPS:
            crash_pre = injector.fires("worker.crash.pre")
            if not crash_pre and effective is not None:
                # A hang is only observable through a bounded recv; with
                # no bound it would be an unbounded stall, so skip it.
                hang = injector.fires("pipe.hang")
            if not (crash_pre or hang):
                crash_post = injector.fires("worker.crash.post")
                if not crash_post:
                    corrupt = injector.fires("reply.corrupt")
        with self._lock:
            if not self._alive:
                raise ShardWorkerError(
                    f"shard {self.index} worker is closed",
                    shard_index=self.index)
            try:
                if crash_pre:
                    # The worker dies before serving the leg; the send
                    # may still land in the pipe buffer, but the recv
                    # below EOFs and takes the died-error path.
                    self.process.kill()
                    self.process.join(5.0)
                if hang:
                    # Wedge the worker for real: it naps well past the
                    # recv bound, so detection (not the nap ending) is
                    # what unblocks us.  If the nap somehow ends first,
                    # consume its reply and fall through to the real op.
                    self._conn.send(("hang", injector.hang_seconds))
                    self._recv_bounded(effective, op)
                self._conn.send((op, payload))
                status, out, stats = self._recv_bounded(effective, op)
                if crash_post:
                    # The reply was computed but is "lost": kill the
                    # worker and discard it, so a retried leg recomputes.
                    self.process.kill()
                    self.process.join(5.0)
                    self._teardown(terminate=True)
                    raise ShardWorkerError(
                        f"shard {self.index} worker process died during "
                        f"{op!r} before its reply was consumed (injected "
                        f"post-leg crash); the scatter executor will "
                        f"respawn it on the next leg",
                        shard_index=self.index)
                if corrupt:
                    # The reply stream can no longer be trusted once a
                    # frame is mangled: discard it and the worker both.
                    self._teardown(terminate=True)
                    raise ShardWorkerError(
                        f"shard {self.index} worker reply for {op!r} was "
                        f"corrupted (injected); worker torn down and will "
                        f"be respawned on the next leg",
                        shard_index=self.index)
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._teardown(terminate=True)
                code = self.process.exitcode
                raise ShardWorkerError(
                    f"shard {self.index} worker process died "
                    f"(exit code {code}) during {op!r}; the scatter "
                    f"executor will respawn it on the next leg",
                    shard_index=self.index) from exc
        if status == "error":
            if isinstance(out, Exception):
                raise out
            raise ShardWorkerError(str(out), shard_index=self.index)
        return out, stats

    def _recv_bounded(self, timeout: Optional[float], op: str):
        """Receive one reply, killing a worker that misses the bound.

        Must be called with the lock held.  A ``None`` timeout preserves
        the original unbounded wait.
        """
        if timeout is not None and not self._conn.poll(max(0.0, timeout)):
            self._teardown(terminate=True)
            raise ShardWorkerError(
                f"shard {self.index} worker did not reply within "
                f"{timeout:.4g}s during {op!r} (hung worker killed; the "
                f"scatter executor will respawn it on the next leg)",
                shard_index=self.index, timed_out=True)
        return self._conn.recv()

    @property
    def alive(self) -> bool:
        """Whether the worker can still take requests."""
        return self._alive and self.process.is_alive()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 2.0) -> None:
        """Stop the worker and release its shared memory.  Idempotent.

        Asks politely first (``close`` op), escalates to ``terminate``
        when the worker does not exit within ``timeout`` seconds, and
        unlinks both shared-memory blocks afterwards — the parent created
        them, so the parent is the one that must unlink them.
        """
        with self._lock:
            if not self._alive:
                return
            try:
                self._conn.send(("close", None))
                if self._conn.poll(timeout):
                    self._conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            self._teardown(terminate=True, timeout=timeout)

    def _teardown(self, terminate: bool = False, timeout: float = 2.0) -> None:
        """Close the pipe, reap the process, unlink the memory (lock held)."""
        self._alive = False
        try:
            self._conn.close()
        except OSError:
            pass
        self.process.join(timeout)
        if terminate and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        for shm in (self._sel_shm, self._rank_shm):
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(timeout=0.5)
        except Exception:
            pass
