"""Scatter/gather execution over a sharded relation.

:class:`ScatterGatherExecutor` exposes the same ``execute`` /
``execute_many`` / ``plan`` / ``explain`` surface as the single-relation
:class:`~repro.engine.Executor`, but behind it a query is

1. *pruned* — shards whose :class:`~repro.shard.stats.ShardStatistics`
   prove the predicate unsatisfiable are skipped before any backend runs;
2. *scattered* — surviving shards execute the query through their own
   engine stacks (optionally on a thread pool; each shard's stack is an
   independent object graph, so shards run concurrently without sharing);
3. *gathered* — per-shard top-k answers are k-way merged under the
   canonical :func:`repro.query.topk_order_key` order, and per-shard
   skylines are re-checked for cross-shard dominance (a point on one
   shard's local skyline may be dominated by another shard's point).

Sequential top-k scatters are additionally *ordered and bounded* by the
engine's :class:`~repro.engine.cost.CostModel`: legs run most-promising
first (lowest attainable score over the shard's ranking ranges, fewer
expected matches on ties), and once k answers are gathered a remaining
shard whose ranking-range score floor strictly exceeds the current k-th
score is skipped outright — no tuple it holds could enter the top-k or
even tie it, so the gathered answer stays bit-identical while the scatter
touches fewer shards.

The gathered result's ``extra`` records the shards consulted, the shards
pruned with their reasons, the legs skipped by the gather bound, the leg
order, and the backend each consulted shard chose — the whole scatter is
explainable end-to-end, just like a single-engine plan.

Scatter legs are additionally *fault-tolerant* (see :mod:`repro.fault`):
a per-call :class:`~repro.fault.deadline.Deadline` is checked between
legs and converted into bounded pipe waits on process legs; a
:class:`~repro.fault.retry.RetryPolicy` re-runs failed legs with
jittered exponential backoff under a budget; per-shard
:class:`~repro.fault.breaker.CircuitBreaker`\\ s fail persistent
offenders fast; and ``allow_partial`` degrades a scatter with dead
shards into the exact answer over the survivors (flagged in ``extra``)
instead of failing the whole query.  None of this machinery can change
an answer — a retried leg recomputes the same deterministic result, a
degraded result is exactly the oracle restricted to surviving shards,
and degraded results are never stored in the result cache.
"""

from __future__ import annotations

import heapq
import multiprocessing
import random
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.engine.cache import (
    ResultCache,
    function_fuse_key,
    new_cache_scope,
    partition_batch,
    query_cache_key,
)
from repro.engine.cost import CostModel
from repro.engine.plan import (
    KIND_SKYLINE,
    KIND_TOPK,
    MODE_COST,
    MODE_STATIC,
    QueryPlan,
)
from repro.engine.registry import kind_of
from repro.errors import (
    DeadlineExceededError,
    PartialBatchError,
    PlanningError,
    ShardWorkerError,
)
from repro.fault.breaker import BreakerOpenError, CircuitBreaker
from repro.fault.inject import InjectedFaultError
from repro.obs.metrics import MetricsRegistry, merged_snapshot
from repro.obs.trace import NULL_SPAN, NULL_TRACER
from repro.query import QueryResult, TopKQuery, topk_order_key
from repro.shard.manager import Shard, ShardManager
from repro.shard.worker import ShardWorker
from repro.skyline.dominance import skyline_of, transform_dynamic
from repro.skyline.engine import SkylineResult


class _LegLedger:
    """Per-gathered-result record of leg attempts and final failures.

    One ledger backs one gathered :class:`~repro.query.QueryResult` —
    the solo scatter keeps one, a fused group keeps one per rider (a
    failed leg only taints the riders it carried).  Thread-safe because
    parallel legs of one scatter write concurrently.
    """

    __slots__ = ("attempts", "failed", "errors", "_lock")

    def __init__(self) -> None:
        #: shard index -> leg runs (0: refused by an open breaker).
        self.attempts: Dict[int, int] = {}
        #: ``(shard index, short reason)`` per finally-failed leg.
        self.failed: List[Tuple[int, str]] = []
        #: The failing exceptions, in failure order.
        self.errors: List[Exception] = []
        self._lock = threading.Lock()

    def note_attempts(self, index: int, runs: int) -> None:
        with self._lock:
            self.attempts[index] = self.attempts.get(index, 0) + runs

    def note_failure(self, index: int, reason: str, exc: Exception) -> None:
        with self._lock:
            self.failed.append((index, reason))
            self.errors.append(exc)


class _FaultContext:
    """One front-door call's fault posture: deadline, partiality, budget.

    Created per ``execute``/``execute_many`` call (``None`` when no
    fault machinery is configured — the legacy zero-overhead path); the
    retry budget inside is shared by every leg of the call, so many
    flapping shards cannot multiply per-leg patience.
    """

    __slots__ = ("deadline", "allow_partial", "budget")

    def __init__(self, deadline, allow_partial: bool, policy) -> None:
        self.deadline = deadline
        self.allow_partial = bool(allow_partial)
        self.budget = policy.new_budget() if policy is not None else None


class ScatterGatherExecutor:
    """Executor facade that scatters queries across shards and merges answers.

    Parameters
    ----------
    manager:
        The :class:`~repro.shard.manager.ShardManager` owning the shards.
    parallel:
        Run surviving shards on a :class:`ThreadPoolExecutor` instead of
        sequentially.  Gathered results are identical either way — the merge
        consumes per-shard answers in shard order.
    max_workers:
        Thread-pool size when ``parallel`` (default: one per shard).
    cost_model:
        The :class:`~repro.engine.cost.CostModel` ordering sequential
        top-k scatter legs and bounding the gather (default: a fresh
        model with the stock constants).
    retry_policy:
        A :class:`~repro.fault.retry.RetryPolicy` re-running failed legs
        with jittered exponential backoff (default: no retries — a leg
        failure propagates on the first attempt).
    breaker_policy:
        A :class:`~repro.fault.breaker.BreakerPolicy` configuring lazy
        per-shard circuit breakers (default: no breakers).
    fault_injector:
        A :class:`~repro.fault.inject.FaultInjector` planting seeded
        chaos in the legs (thread legs raise
        :class:`~repro.fault.inject.InjectedFaultError`; process legs
        hand the injector to their workers for real crashes and hangs).
    allow_partial:
        Default partiality: when a shard stays down past retries (or
        its breaker is open), gather the exact answer over the surviving
        shards — flagged ``degraded`` in ``extra`` — instead of raising.
        Per-call ``allow_partial=`` overrides; ``False`` keeps the
        strict raise-on-failure contract.
    """

    def __init__(self, manager: ShardManager, parallel: bool = False,
                 max_workers: Optional[int] = None,
                 result_cache: Optional[ResultCache] = None,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None,
                 retry_policy=None,
                 breaker_policy=None,
                 fault_injector=None,
                 allow_partial: bool = False) -> None:
        self.manager = manager
        self.parallel = parallel
        self.max_workers = max_workers
        self.cost_model = cost_model or CostModel()
        self.result_cache = result_cache or ResultCache()
        self.fused_groups = 0
        self.fused_queries = 0
        self._cache_scope = new_cache_scope()
        self._relation_version = manager.relation.version
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_workers = 0
        self._pool_lock = threading.Lock()
        #: Pools replaced by an :meth:`ensure_pool` upsize.  They were
        #: shut down with ``wait=False`` so queued legs could finish, but
        #: their threads may still be draining — :meth:`close` joins them
        #: so a closed executor provably leaves no threads behind.
        self._retired_pools: List[ThreadPoolExecutor] = []
        #: ``shard.*`` counters of the scatter front door itself; the
        #: per-shard engines keep their own ``engine.*`` registries,
        #: merged on demand by :meth:`metrics_snapshot`.
        self.metrics = metrics or MetricsRegistry()
        #: Off by default (the no-op null tracer).
        self.tracer = tracer or NULL_TRACER
        self._m_queries = self.metrics.counter("shard.queries")
        self._m_batches = self.metrics.counter("shard.batches")
        self._m_legs = self.metrics.counter("shard.legs_run")
        self._m_legs_skipped = self.metrics.counter("shard.legs_skipped")
        self._m_pruned = self.metrics.counter("shard.shards_pruned")
        self._m_tuples = self.metrics.counter("shard.tuples_evaluated")
        self._m_latency = self.metrics.histogram("shard.latency_seconds")
        # --- fault tolerance (see repro.fault) -------------------------
        self.retry_policy = retry_policy
        self.breaker_policy = breaker_policy
        self.fault_injector = fault_injector
        self.allow_partial = bool(allow_partial)
        #: Jitter RNG for retry backoff; seeded from the policy so chaos
        #: runs replay the same sleeps.  Guarded by a lock — parallel
        #: legs draw concurrently and Random is not thread-safe.
        self._retry_rng = (random.Random(retry_policy.jitter_seed)
                           if retry_policy is not None else random.Random())
        self._jitter_lock = threading.Lock()
        #: Backoff sleep hook — tests stub it to assert delays without
        #: paying them.
        self._sleep = time.sleep
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        #: Clock handed to lazily built breakers (tests pin a fake one
        #: before the first leg to step cooldowns deterministically).
        self._breaker_clock = time.monotonic
        #: Whether the injector fires *in the legs themselves* (thread
        #: mode).  ProcessScatterExecutor turns this off and attaches
        #: the injector to its workers instead, so injected crashes are
        #: real process deaths, not simulated exceptions.
        self._leg_injection = True
        self._m_retries = self.metrics.counter("fault.retries")
        self._m_leg_failures = self.metrics.counter("fault.leg_failures")
        self._m_hung = self.metrics.counter("fault.hung_legs")
        self._m_deadline = self.metrics.counter("fault.deadline_exceeded")
        self._m_degraded = self.metrics.counter("fault.degraded_results")
        self._m_shards_failed = self.metrics.counter("fault.shards_failed")
        self._m_budget_exhausted = self.metrics.counter(
            "fault.retry_budget_exhausted")
        self._m_breaker_opened = self.metrics.counter("breaker.opened")
        self._m_breaker_closed = self.metrics.counter("breaker.closed")
        self._m_breaker_probes = self.metrics.counter(
            "breaker.half_open_probes")
        self._m_breaker_rejected = self.metrics.counter("breaker.rejected")
        manager.add_invalidation_hook(self._on_mutation)

    def _on_mutation(self, row=None) -> None:
        """Manager-fired invalidation: predicate-aware drop + version sync.

        A manager-routed ``insert`` hands the row through, so only cached
        answers the row can affect are dropped (see
        :meth:`~repro.engine.cache.ResultCache.invalidate`); blanket
        changes (``reshard``, explicit flushes) pass ``None`` and clear
        everything.  Recording the base relation's version here keeps
        :meth:`_check_base_relation` from re-clearing the survivors — that
        path now only fires for mutations that bypassed the manager.
        """
        total = sum(s.relation.num_tuples for s in self.manager.shards)
        if total == self.manager.relation.num_tuples:
            # Only sync while the shards still cover the base relation; a
            # desync (an out-of-band append followed by a routed insert)
            # must keep failing loudly in _check_base_relation.
            self._relation_version = self.manager.relation.version
        self.result_cache.invalidate(row=row)

    def _check_base_relation(self) -> None:
        """Detect base-relation mutation and refuse to serve from stale shards.

        Mutations routed through the manager keep the shard sub-relations in
        sync; a direct ``Relation.append`` on the base relation does not, so
        answers computed from the shards would silently miss the new rows.
        Detect the version change, drop the result cache, and — if the shard
        row counts no longer add up — fail loudly instead of wrongly.
        """
        if self.manager.relation.version == self._relation_version:
            return
        total = sum(s.relation.num_tuples for s in self.manager.shards)
        if total != self.manager.relation.num_tuples:
            # Do NOT record the new version: every subsequent call must
            # re-detect the desync and keep raising until reshard() (or a
            # manager-routed insert) restores coverage.
            raise PlanningError(
                "the base relation was mutated outside the ShardManager "
                "(shard row counts no longer cover it); route inserts "
                "through ShardManager.insert() or call reshard()")
        self._relation_version = self.manager.relation.version
        self.result_cache.invalidate()

    # ------------------------------------------------------------------
    # thread pool
    # ------------------------------------------------------------------
    def ensure_pool(self, reserve: int = 0) -> ThreadPoolExecutor:
        """The scatter thread pool, created on first use and then reused.

        ``reserve`` adds workers beyond the per-shard legs for callers
        that dispatch whole front-door calls onto the *same* pool (the
        async serving layer reuses this pool instead of duplicating it):
        with at most ``reserve`` such outer calls in flight at once, the
        legs they fan out to always find a free worker, so nesting
        front-door work and scatter legs on one pool cannot deadlock.
        A pool created earlier with fewer workers (a parallel scatter ran
        before the serving layer attached) is replaced by a larger one —
        otherwise the reserve, and the deadlock-freedom argument with it,
        would be silently lost; the old pool finishes its queued legs and
        is shut down without blocking.  Because a replacement invalidates
        previously returned handles, callers that dispatch onto this pool
        across await points must re-fetch it per call rather than caching
        the return value (the serving layer does).
        """
        needed = (self.max_workers or self.manager.num_shards) + max(0, reserve)
        with self._pool_lock:
            if self._pool is not None and needed > self._pool_workers:
                self._pool.shutdown(wait=False)
                self._retired_pools.append(self._pool)
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=needed)
                self._pool_workers = needed
            return self._pool

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Deterministically tear down every pool this executor created.

        Joins the live scatter pool *and* every pool retired by an
        :meth:`ensure_pool` upsize (those were shut down with
        ``wait=False`` and could still be draining legs) — after
        :meth:`close` returns, no thread started by this executor is
        alive.  The executor stays usable: a later parallel scatter
        lazily recreates the pool, so owners like the serving layer can
        close a shared engine without making it unusable for the next
        owner.  Idempotent and safe to call on a never-parallel executor.
        """
        with self._pool_lock:
            pools = list(self._retired_pools)
            self._retired_pools.clear()
            if self._pool is not None:
                pools.append(self._pool)
                self._pool = None
                self._pool_workers = 0
        for pool in pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shard pruning
    # ------------------------------------------------------------------
    def _scatter_set(self, query) -> Tuple[List[Shard], List[Tuple[int, str]]]:
        """Split shards into (consulted, pruned-with-reason) for ``query``."""
        kind = kind_of(query)
        if kind not in (KIND_TOPK, KIND_SKYLINE):
            raise PlanningError(
                f"scatter/gather serves top-k and skyline queries, not {kind!r}")
        consulted: List[Shard] = []
        pruned: List[Tuple[int, str]] = []
        for shard in self.manager.shards:
            ok, reason = shard.stats.can_match(query.predicate)
            if ok:
                consulted.append(shard)
            else:
                pruned.append((shard.index, reason or "pruned"))
        return consulted, pruned

    def _scatter_details(self, query, consulted: List[Shard],
                         pruned: List[Tuple[int, str]],
                         shard_backends: Dict[int, str],
                         skipped: Tuple[Tuple[int, str], ...] = (),
                         order: Optional[List[Shard]] = None,
                         ) -> Dict[str, object]:
        """One rendering of the scatter set, shared by plans and results.

        ``order`` is the planned leg order over every surviving shard;
        after a bounded scatter it covers skipped legs too, so the default
        (re-derived from ``consulted``) only serves the un-skipped paths.
        """
        if order is None:
            order = self._leg_order(query, consulted)
        return {
            "policy": self.manager.policy.describe(),
            "shards_total": self.manager.num_shards,
            "shards_consulted": ",".join(str(s.index) for s in consulted) or "-",
            "shards_pruned": "|".join(
                f"{index}:{reason}" for index, reason in pruned) or "-",
            "shards_skipped": "|".join(
                f"{index}:{reason}" for index, reason in skipped) or "-",
            "scatter_order": ",".join(str(s.index) for s in order) or "-",
            "shard_backends": ",".join(
                f"{index}:{name}" for index, name in sorted(shard_backends.items()))
                or "-",
        }

    # ------------------------------------------------------------------
    # cost-ordered scatter
    # ------------------------------------------------------------------
    def _leg_order(self, query, consulted: List[Shard]) -> List[Shard]:
        """Scatter legs ordered by the cost model: most promising first.

        The primary key is the shard's attainable-score floor for the
        query's function (so the gathered k-th score tightens as early as
        possible), then the expected matching tuples, then the shard index
        — a deterministic total order.
        """
        return sorted(consulted,
                      key=lambda shard: self.cost_model.scatter_key(
                          query, shard.stats) + (shard.index,))

    # ------------------------------------------------------------------
    # planning / explain
    # ------------------------------------------------------------------
    def plan(self, query) -> QueryPlan:
        """The gathered plan: scatter set, prune reasons, per-shard backends.

        Planning consults the surviving shards' own planners (building
        their stacks if needed) so the per-shard backend choice is exact,
        not guessed.
        """
        self._check_base_relation()
        consulted, pruned = self._scatter_set(query)
        shard_plans = {
            shard.index: self._shard_plan(shard, query)
            for shard in consulted
        }
        shard_backends = {index: plan.backend
                          for index, plan in shard_plans.items()}
        # The gathered plan is cost-driven when every consulted shard's
        # planner selected by cost (vacuously when statistics pruned every
        # shard — the profile alone decided); a single static shard makes
        # the whole scatter report static, never overstating the evidence.
        mode = (MODE_COST
                if all(plan.mode == MODE_COST for plan in shard_plans.values())
                else MODE_STATIC)
        return QueryPlan(
            backend="scatter-gather",
            query_kind=kind_of(query),
            reason=(f"scatter to {len(consulted)}/{self.manager.num_shards} shards "
                    f"under {self.manager.policy.describe()}, "
                    f"{len(pruned)} pruned by statistics"),
            details=self._scatter_details(query, consulted, pruned,
                                          shard_backends),
            candidates=tuple(f"shard{s.index}" for s in consulted),
            mode=mode,
        )

    def explain(self, query) -> str:
        """One-line explanation of how ``query`` scatters."""
        return self.plan(query).describe()

    def plan_backends(self, queries: Iterable) -> Set[str]:
        """Backend names a batch would occupy — here, the scatter itself.

        The serving layer keys its per-backend concurrency semaphores on
        these names.  For a scatter engine the unit of contention is the
        whole scatter front door (the per-shard backend choices run
        *inside* its legs), so every non-empty batch maps to
        ``{"scatter-gather"}``.
        """
        return {"scatter-gather"} if list(queries) else set()

    # ------------------------------------------------------------------
    # fault machinery
    # ------------------------------------------------------------------
    def _fault_context(self, deadline, allow_partial) -> Optional[_FaultContext]:
        """The call's fault posture, or ``None`` for the legacy fast path."""
        partial = (self.allow_partial if allow_partial is None
                   else bool(allow_partial))
        if (deadline is None and not partial and self.retry_policy is None
                and self.breaker_policy is None
                and self.fault_injector is None):
            return None
        return _FaultContext(deadline, partial, self.retry_policy)

    def _check_deadline(self, ctx: Optional[_FaultContext],
                        context: str) -> None:
        """Raise (and count) when the call's deadline has passed."""
        if ctx is None or ctx.deadline is None:
            return
        if ctx.deadline.expired():
            self._m_deadline.inc()
            raise DeadlineExceededError(f"deadline exceeded before {context}")

    def _on_breaker_event(self, event: str, shard_index: int) -> None:
        if event == "opened":
            self._m_breaker_opened.inc()
        elif event == "closed":
            self._m_breaker_closed.inc()
        elif event == "half_open_probe":
            self._m_breaker_probes.inc()

    def _breaker_for(self, index: int) -> Optional[CircuitBreaker]:
        """The shard's breaker, built lazily; ``None`` without a policy."""
        if self.breaker_policy is None:
            return None
        with self._breaker_lock:
            breaker = self._breakers.get(index)
            if breaker is None:
                breaker = CircuitBreaker(index, self.breaker_policy,
                                         clock=self._breaker_clock,
                                         on_event=self._on_breaker_event)
                self._breakers[index] = breaker
            return breaker

    def _retry_delay(self, attempts: int,
                     ctx: _FaultContext) -> Optional[float]:
        """Backoff before re-running a failed leg, or ``None`` to give up.

        ``None`` when retries are off, attempts are exhausted, the
        deadline has no room left, or the call's retry budget cannot
        cover the sleep.  A granted delay is capped by the deadline's
        remaining time — sleeping past it would turn a recoverable leg
        failure into a guaranteed deadline miss.
        """
        policy = self.retry_policy
        if policy is None or attempts >= policy.max_attempts:
            return None
        with self._jitter_lock:
            delay = policy.backoff(attempts, self._retry_rng)
        if ctx.deadline is not None:
            remaining = ctx.deadline.remaining()
            if remaining <= 0.0:
                return None
            delay = min(delay, remaining)
        if ctx.budget is not None and not ctx.budget.consume(delay):
            self._m_budget_exhausted.inc()
            return None
        return delay

    def _record_leg_failure(self, shard: Shard, exc: Exception,
                            attempts: int, ledgers, leg) -> None:
        """Book a finally-failed leg into its riders' ledgers and span."""
        reason = type(exc).__name__
        if getattr(exc, "timed_out", False):
            reason += ":timed_out"
        self._m_shards_failed.inc()
        for ledger in ledgers:
            ledger.note_attempts(shard.index, attempts)
            ledger.note_failure(shard.index, reason, exc)
        if leg:
            leg.set("failed", reason)

    def _guarded(self, shard: Shard, runner, ctx: Optional[_FaultContext],
                 ledgers, leg):
        """Run one leg under deadline/breaker/retry/injection guards.

        With no fault context this is a plain ``runner()`` — the
        pre-fault zero-overhead path.  Otherwise the leg loops: deadline
        checked first (expiry always raises, even under
        ``allow_partial`` — a late answer is not a partial answer), the
        shard's breaker consulted (an open breaker refuses fail-fast,
        spending no attempts and no budget), then the leg runs; a
        :class:`~repro.errors.ShardWorkerError` feeds the breaker and —
        backoff permitting — retries against the (respawned) worker.
        The final failure is booked into the riders' ledgers and
        re-raised; the caller decides between propagating (strict) and
        degrading (partial).
        """
        if ctx is None:
            return runner()
        breaker = self._breaker_for(shard.index)
        injector = self.fault_injector
        attempts = 0
        while True:
            self._check_deadline(ctx, f"scatter leg to shard {shard.index}")
            if breaker is not None and not breaker.allow():
                self._m_breaker_rejected.inc()
                error = BreakerOpenError(shard.index, breaker.retry_after())
                self._record_leg_failure(shard, error, attempts, ledgers, leg)
                raise error
            attempts += 1
            try:
                if injector is not None:
                    if injector.fires("leg.delay"):
                        self._sleep(injector.delay_seconds)
                    if (self._leg_injection
                            and injector.fires("worker.crash.pre")):
                        raise InjectedFaultError("worker.crash.pre",
                                                 shard.index)
                result = runner()
                if (injector is not None and self._leg_injection
                        and injector.fires("worker.crash.post")):
                    raise InjectedFaultError("worker.crash.post", shard.index)
            except ShardWorkerError as exc:
                if breaker is not None:
                    breaker.record_failure()
                self._m_leg_failures.inc()
                if getattr(exc, "timed_out", False):
                    self._m_hung.inc()
                delay = self._retry_delay(attempts, ctx)
                if delay is None:
                    self._record_leg_failure(shard, exc, attempts, ledgers,
                                             leg)
                    raise
                self._m_retries.inc()
                if leg:
                    leg.set(f"retry_{attempts}", type(exc).__name__)
                if delay > 0.0:
                    self._sleep(delay)
                continue
            if breaker is not None:
                breaker.record_success()
            for ledger in ledgers:
                ledger.note_attempts(shard.index, attempts)
            if leg and attempts > 1:
                leg.set("attempts", attempts)
            return result

    def _apply_fault_extra(self, result, ctx: Optional[_FaultContext],
                           ledger: Optional[_LegLedger],
                           planned: int) -> None:
        """Decorate a gathered result with the call's fault record.

        ``leg_attempts`` appears whenever the machinery ran; the
        degraded triple (``degraded`` / ``shards_failed`` /
        ``completeness``) only when legs were lost — its presence *is*
        the partial-result signal.
        """
        if ctx is None or ledger is None:
            return
        if ledger.attempts:
            result.extra["leg_attempts"] = ",".join(
                f"{index}:{count}"
                for index, count in sorted(ledger.attempts.items()))
        if ledger.failed:
            self._m_degraded.inc()
            result.extra["degraded"] = 1.0
            result.extra["shards_failed"] = "|".join(
                f"{index}:{reason}" for index, reason in ledger.failed)
            result.extra["completeness"] = (
                (planned - len(ledger.failed)) / planned if planned else 1.0)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query, *, parent_span=None, use_result_cache=True,
                deadline=None, allow_partial=None):
        """Prune, scatter, execute per shard, and gather one merged result.

        ``parent_span`` threads an enabled trace through: the tree gains
        a ``shard.execute`` span with one ``shard.leg`` child per
        consulted *and* per skipped shard (skipped legs carry their skip
        reason) and a ``shard.gather`` child.  ``use_result_cache=False``
        bypasses the front-door result cache both ways — the
        ``explain_analyze`` contract.

        ``deadline`` (a :class:`~repro.fault.deadline.Deadline`) bounds
        the whole call: it is checked before every leg and tightens
        process legs' pipe waits, and its expiry raises
        :class:`~repro.errors.DeadlineExceededError` — never a partial
        answer.  ``allow_partial`` overrides the executor's default
        partiality for this call (see the class docstring).
        """
        self._check_base_relation()
        span = (parent_span.child("shard.execute")
                if parent_span is not None
                else self.tracer.trace("shard.execute"))
        started = time.perf_counter()
        self._m_queries.inc()
        try:
            ctx = self._fault_context(deadline, allow_partial)
            self._check_deadline(ctx, "scatter")
            key = query_cache_key(query) if use_result_cache else None
            if key is not None:
                key = (self._cache_scope,) + key
                hit = self.result_cache.lookup(key)
                if hit is not None:
                    span.set("result_cache", "hit")
                    return hit
            return self._execute_miss(query, key, span, ctx)
        finally:
            self._m_latency.observe(time.perf_counter() - started)
            span.finish()

    def _execute_miss(self, query, key, span=NULL_SPAN, ctx=None):
        """The scatter/gather body of :meth:`execute` after a cache miss."""
        start = time.perf_counter()
        consulted, pruned = self._scatter_set(query)
        self._m_pruned.inc(float(len(pruned)))
        if span and pruned:
            span.set("shards_pruned", tuple(pruned))
        kind = kind_of(query)
        planned_order = self._leg_order(query, consulted)
        planned = len(consulted)
        ledger = _LegLedger() if ctx is not None else None
        skipped: Tuple[Tuple[int, str], ...] = ()
        if (kind == KIND_TOPK and not self.parallel
                and isinstance(query, TopKQuery) and len(consulted) > 1):
            consulted, shard_results, skipped = self._run_shards_bounded(
                planned_order, query, span, ctx, ledger)
        else:
            consulted, shard_results = self._run_shards(consulted, query,
                                                        span, ctx, ledger)
        if (ledger is not None and ledger.failed and not consulted
                and planned):
            # Every consulted shard failed: there is nothing to degrade
            # to — even a partial call must fail rather than answer
            # "empty" from zero evidence.
            raise ledger.errors[-1]
        gather_span = span.child("shard.gather")
        if kind == KIND_TOPK:
            result = self._gather_topk(query, consulted, shard_results)
        else:
            result = self._gather_skyline(query, consulted, shard_results)
        gather_span.set("merged_rows", len(result.tids)).finish()
        self._m_tuples.inc(float(getattr(result, "tuples_evaluated", 0)))
        result.elapsed_seconds = time.perf_counter() - start
        shard_backends = {
            shard.index: str(res.extra.get("backend", "?"))
            for shard, res in zip(consulted, shard_results)
        }
        result.extra["backend"] = "scatter-gather"
        result.extra.update(
            self._scatter_details(query, consulted, pruned, shard_backends,
                                  skipped, order=planned_order))
        result.extra["plan"] = (
            f"scatter to {len(consulted)}/{self.manager.num_shards} shards "
            f"[policy={result.extra['policy']} "
            f"pruned={result.extra['shards_pruned']} "
            f"skipped={result.extra['shards_skipped']} "
            f"backends={result.extra['shard_backends']}]")
        self._apply_fault_extra(result, ctx, ledger, planned)
        if key is not None and (ledger is None or not ledger.failed):
            # A degraded result is exact only over the surviving shards;
            # caching it would keep serving the gap after recovery.
            self.result_cache.store(key, result)
        return result

    def execute_many(self, queries: Iterable, *, parent_span=None,
                     deadline=None, allow_partial=None) -> List:
        """Execute a batch of queries with one scatter leg per shard.

        Results come back in submission order and bit-identical to looping
        :meth:`execute`.  Cached queries are served first; the remaining
        top-k misses are grouped by canonical ranking-function key and each
        group scatters as a unit: every shard consulted by at least one
        group member receives *one* leg carrying exactly the members whose
        statistics did not prune it (one thread-pool task per shard per
        batch when parallel), the shard runs its own fused
        ``execute_many``, and answers are gathered per query.  Sequential
        scatters stay cost-ordered and bounded like the single-query path,
        with one difference: legs follow one *group-level* cost order (see
        :meth:`_group_leg_order`) rather than each member's solo order, so
        a member's ``shards_skipped`` / work counters may differ from its
        solo run even though the k-th-score skip bound is applied per query
        and answers stay bit-identical.  Gathered results record
        ``fused_group_size``, the legs' aggregated ``plans_reused``, and
        the solo-equivalent ``tuples_evaluated`` in ``extra``.

        Failures are *contained*: a leg failure for one fused group (or
        one single) fails only that group's queries — the rest of the
        batch completes — and the batch raises
        :class:`~repro.errors.PartialBatchError` carrying the completed
        results aligned with the failed positions' exceptions.  A batch
        with no failures returns plainly, exactly as before.
        """
        queries = list(queries)
        if not queries:
            return []
        self._check_base_relation()
        span = (parent_span.child("shard.execute_many")
                if parent_span is not None
                else self.tracer.trace("shard.execute_many"))
        started = time.perf_counter()
        self._m_batches.inc()
        self._m_queries.inc(float(len(queries)))
        try:
            if span:
                span.set("batch_size", len(queries))
            ctx = self._fault_context(deadline, allow_partial)
            results, units, _, followers = partition_batch(
                queries, self._cache_scope, self.result_cache)
            errors: Dict[int, Exception] = {}

            groups: Dict[tuple, List[int]] = {}
            singles: List[int] = []
            for position, (_, query, _) in enumerate(units):
                if isinstance(query, TopKQuery):
                    groups.setdefault(function_fuse_key(query.function),
                                      []).append(position)
                else:
                    singles.append(position)
            for members in groups.values():
                if len(members) == 1:
                    singles.append(members[0])
                    continue
                self.fused_groups += 1
                self.fused_queries += len(members)
                try:
                    group_results = self._execute_group(
                        [units[position] for position in members], span, ctx)
                except (ShardWorkerError, DeadlineExceededError) as exc:
                    for position in members:
                        errors[units[position][0]] = exc
                    continue
                for position, result in zip(members, group_results):
                    i = units[position][0]
                    if isinstance(result, Exception):
                        errors[i] = result
                    else:
                        results[i] = result
            for position in sorted(singles):
                i, query, key = units[position]
                try:
                    results[i] = self._run_single(query, key, span, ctx)
                except (ShardWorkerError, DeadlineExceededError) as exc:
                    errors[i] = exc
            for i, query, key in followers:
                hit = self.result_cache.lookup(key)
                if hit is not None:
                    results[i] = hit
                    continue
                try:
                    results[i] = self._run_single(query, key, span, ctx)
                except (ShardWorkerError, DeadlineExceededError) as exc:
                    errors[i] = exc
            if errors:
                raise PartialBatchError(results, errors)
            return results
        finally:
            self._m_latency.observe(time.perf_counter() - started)
            span.finish()

    def _run_single(self, query, key, span=NULL_SPAN, ctx=None):
        """One ungrouped batch member under its own ``shard.execute`` span."""
        single_span = (span.child("shard.execute") if span else NULL_SPAN)
        try:
            return self._execute_miss(query, key, single_span, ctx)
        finally:
            single_span.finish()

    def _execute_group(self, group: List[Tuple[int, object, Optional[tuple]]],
                       span=NULL_SPAN, ctx=None) -> List[QueryResult]:
        """Scatter one same-function top-k group with one leg per shard.

        Per-query prune decisions are taken exactly as in :meth:`execute`;
        a shard's leg carries the union of group members that consulted it.
        Sequential scatters walk the legs in cost order (lowest attainable
        score floor over the group first) and apply the k-th-score skip
        bound *per query*: a member whose gathered k-th score strictly
        beats a shard's floor drops out of that leg (recorded in its
        ``shards_skipped``), and a leg every member dropped never runs.

        Under an enabled trace the group gets one ``shard.fused_scatter``
        span whose ``shard.leg`` children carry the rider indices; a
        member skipped by the k-th-score bound shows up on the leg as a
        ``skipped_q<i>`` attribute, and a leg every member dropped is
        recorded with ``skipped="all riders"`` instead of running.

        Fault handling is per *rider*: a failed leg taints only the
        members it carried.  Under ``allow_partial`` those members
        degrade to the surviving legs' answer; a member whose every leg
        failed comes back as its exception *in the returned list* (the
        caller maps it into :class:`~repro.errors.PartialBatchError`).
        Strict mode re-raises the leg failure for the whole group.
        """
        start = time.perf_counter()
        group_queries = [query for _, query, _ in group]
        group_span = (span.child("shard.fused_scatter")
                      .set("group_size", len(group)))
        consulted_sets: List[Dict[int, Shard]] = []
        pruned_lists: List[List[Tuple[int, str]]] = []
        for query in group_queries:
            consulted, pruned = self._scatter_set(query)
            consulted_sets.append({shard.index: shard for shard in consulted})
            pruned_lists.append(pruned)
        involved = sorted({index for by_index in consulted_sets
                           for index in by_index})
        shard_of = {shard.index: shard
                    for by_index in consulted_sets
                    for shard in by_index.values()}
        order = self._group_leg_order(group_queries,
                                      [shard_of[index] for index in involved])

        gathered: List[List[float]] = [[] for _ in group]
        skipped: List[List[Tuple[int, str]]] = [[] for _ in group]
        executed: List[List[Tuple[Shard, QueryResult]]] = [[] for _ in group]
        ledgers = ([_LegLedger() for _ in group] if ctx is not None
                   else None)

        def rider_ledgers(riders):
            return ([ledgers[qi] for qi in riders] if ledgers is not None
                    else ())

        sequential = not self.parallel
        if sequential:
            for shard in order:
                carried = [qi for qi in range(len(group_queries))
                           if shard.index in consulted_sets[qi]]
                if not carried:
                    continue
                self._check_deadline(ctx,
                                     f"fused leg to shard {shard.index}")
                leg = (group_span.child("shard.leg")
                       .set("shard", shard.index) if group_span
                       else NULL_SPAN)
                riders = []
                for qi in carried:
                    reason = self._leg_skip_reason(shard, group_queries[qi],
                                                   gathered[qi])
                    if reason is not None:
                        skipped[qi].append((shard.index, reason))
                        self._m_legs_skipped.inc()
                        if leg:
                            leg.set(f"skipped_q{qi}", reason)
                        continue
                    riders.append(qi)
                if not riders:
                    leg.set("skipped", "all riders").finish()
                    continue
                try:
                    leg_results = self._leg_execute_many(
                        shard, [group_queries[qi] for qi in riders], riders,
                        leg, ctx, rider_ledgers(riders))
                except ShardWorkerError:
                    if ctx is None or not ctx.allow_partial:
                        raise
                    continue
                for qi, result in zip(riders, leg_results):
                    executed[qi].append((shard, result))
                    self._fold_gathered(gathered[qi], result,
                                        group_queries[qi].k)
        else:
            legs = []
            for shard in order:
                riders = [qi for qi in range(len(group_queries))
                          if shard.index in consulted_sets[qi]]
                if riders:
                    legs.append((shard, riders))
            if legs:
                self._check_deadline(ctx, "fused scatter dispatch")
                leg_spans = ([group_span.child("shard.leg")
                              .set("shard", shard.index)
                              for shard, _ in legs] if group_span
                             else [NULL_SPAN] * len(legs))

                def run_leg(pair):
                    (shard, riders), leg = pair
                    try:
                        return self._leg_execute_many(
                            shard, [group_queries[qi] for qi in riders],
                            riders, leg, ctx, rider_ledgers(riders))
                    except ShardWorkerError:
                        if ctx is None or not ctx.allow_partial:
                            raise
                        return None

                if len(legs) > 1:
                    leg_outputs = list(self.ensure_pool().map(
                        run_leg, zip(legs, leg_spans)))
                else:
                    leg_outputs = [run_leg(pair)
                                   for pair in zip(legs, leg_spans)]
                for (shard, riders), leg_results in zip(legs, leg_outputs):
                    if leg_results is None:
                        continue
                    for qi, result in zip(riders, leg_results):
                        executed[qi].append((shard, result))
        group_span.finish()

        gather_span = span.child("shard.gather")
        group_size = float(len(group))
        merged_rows = 0
        out: List[QueryResult] = []
        for qi, (i, query, key) in enumerate(group):
            if (ledgers is not None and ledgers[qi].failed
                    and not executed[qi]):
                # Every leg carrying this rider failed: nothing survives
                # to degrade to — report the rider's failure, not an
                # empty answer (the caller maps it per batch position).
                out.append(ledgers[qi].errors[-1])
                continue
            legs_run = sorted(executed[qi], key=lambda pair: pair[0].index)
            consulted = [shard for shard, _ in legs_run]
            shard_results = [result for _, result in legs_run]
            result = self._gather_topk(query, consulted, shard_results)
            merged_rows += len(result.tids)
            self._m_tuples.inc(float(result.tuples_evaluated))
            result.elapsed_seconds = time.perf_counter() - start
            shard_backends = {
                shard.index: str(res.extra.get("backend", "?"))
                for shard, res in legs_run
            }
            planned_order = [shard for shard in order
                             if shard.index in consulted_sets[qi]]
            result.extra["backend"] = "scatter-gather"
            result.extra.update(self._scatter_details(
                query, consulted, pruned_lists[qi], shard_backends,
                tuple(skipped[qi]), order=planned_order))
            result.extra["plan"] = (
                f"scatter to {len(consulted)}/{self.manager.num_shards} shards "
                f"[policy={result.extra['policy']} "
                f"pruned={result.extra['shards_pruned']} "
                f"skipped={result.extra['shards_skipped']} "
                f"backends={result.extra['shard_backends']}]")
            result.extra["fused_group_size"] = group_size
            result.extra["plans_reused"] = sum(
                float(res.extra.get("plans_reused", 0.0))
                for res in shard_results)
            result.extra["tuples_evaluated"] = sum(
                float(res.extra.get("tuples_evaluated",
                                    res.tuples_evaluated))
                for res in shard_results)
            self._apply_fault_extra(result, ctx,
                                    ledgers[qi] if ledgers else None,
                                    len(consulted_sets[qi]))
            if key is not None and (ledgers is None
                                    or not ledgers[qi].failed):
                self.result_cache.store(key, result)
            out.append(result)
        (gather_span.set("group_size", len(group))
         .set("merged_rows", merged_rows).finish())
        return out

    def _group_leg_order(self, group_queries: List, shards: List[Shard],
                         ) -> List[Shard]:
        """Cost order of a fused group's legs: most promising member first.

        A leg's promise is its best promise for *any* member (lowest score
        floor, then fewest expected matches), so the leg that can tighten
        some member's k-th score fastest runs first; the shard index keeps
        the order total and deterministic.
        """
        def leg_key(shard: Shard):
            keys = [self.cost_model.scatter_key(query, shard.stats)
                    for query in group_queries]
            return (min(key[0] for key in keys),
                    min(key[1] for key in keys),
                    shard.index)

        return sorted(shards, key=leg_key)

    def _shard_plan(self, shard: Shard, query) -> QueryPlan:
        """How ``shard`` would serve ``query`` — overridable leg routing.

        The base implementation consults the shard's in-process stack;
        :class:`ProcessScatterExecutor` overrides this (and the two
        ``_shard_execute*`` hooks below) to route heavy legs to worker
        processes instead.
        """
        return self.manager.executor_for(shard).plan(query)

    def _shard_execute(self, shard: Shard, query, leg,
                       deadline=None) -> QueryResult:
        """Run ``query`` on one shard's engine — overridable leg routing.

        The ``parent_span`` keyword is only passed when the leg span is
        real — contextvars do not cross ``run_in_executor`` / pool
        threads, so explicit parenthood is the one reliable channel — and
        custom shard stacks without the keyword keep working untraced.
        ``deadline`` is advisory for in-process legs (a running leg is
        not interruptible); :class:`ProcessScatterExecutor` converts it
        into a bounded pipe wait.
        """
        executor = self.manager.executor_for(shard)
        if leg:
            return executor.execute(query, parent_span=leg)
        return executor.execute(query)

    def _shard_execute_many(self, shard: Shard, leg_queries: List,
                            leg, deadline=None) -> List:
        """Run one shard's fused ``execute_many`` — overridable leg routing."""
        executor = self.manager.executor_for(shard)
        if leg:
            return executor.execute_many(leg_queries, parent_span=leg)
        return executor.execute_many(leg_queries)

    def _leg_execute(self, shard: Shard, query, leg, ctx=None,
                     ledgers=()) -> QueryResult:
        """Run one scatter leg (guarded) and record its span bookkeeping."""
        deadline = ctx.deadline if ctx is not None else None
        if deadline is None:
            runner = lambda: self._shard_execute(shard, query, leg)
        else:
            runner = lambda: self._shard_execute(shard, query, leg,
                                                 deadline=deadline)
        try:
            result = self._guarded(shard, runner, ctx, ledgers, leg)
        except BaseException:
            leg.finish()
            raise
        self._m_legs.inc()
        if leg:
            leg.set("backend", str(result.extra.get("backend", "?")))
            leg.set("tuples_evaluated",
                    float(getattr(result, "tuples_evaluated", 0)))
        leg.finish()
        return result

    def _leg_execute_many(self, shard: Shard, leg_queries: List, riders: List,
                          leg, ctx=None, ledgers=()) -> List:
        """Run one fused-group leg (the shard's own ``execute_many``)."""
        if leg:
            leg.set("riders", tuple(riders))
        deadline = ctx.deadline if ctx is not None else None
        if deadline is None:
            runner = lambda: self._shard_execute_many(shard, leg_queries, leg)
        else:
            runner = lambda: self._shard_execute_many(shard, leg_queries,
                                                      leg, deadline=deadline)
        try:
            leg_results = self._guarded(shard, runner, ctx, ledgers, leg)
        except BaseException:
            leg.finish()
            raise
        self._m_legs.inc()
        if leg:
            leg.set("tuples_evaluated", sum(
                float(getattr(result, "tuples_evaluated", 0))
                for result in leg_results))
        leg.finish()
        return leg_results

    def _run_shards(self, consulted: List[Shard], query,
                    span=NULL_SPAN, ctx=None, ledger=None,
                    ) -> Tuple[List[Shard], List]:
        """Surviving shards and their results, in ``consulted`` order.

        The thread pool is created once on first parallel use and reused
        for the executor's lifetime — per-query pool startup would dominate
        small scattered queries.  Leg spans are opened on the calling
        thread (the span list is lock-protected) and finished by whichever
        thread runs the leg.  Without fault machinery the returned shard
        list is exactly ``consulted``; under ``allow_partial`` a finally
        failed leg drops its shard from the gather (booked in the
        ledger) instead of raising.
        """
        ledgers = (ledger,) if ledger is not None else ()

        def run(shard, leg):
            try:
                return self._leg_execute(shard, query, leg, ctx, ledgers)
            except ShardWorkerError:
                if ctx is None or not ctx.allow_partial:
                    raise
                return None

        if self.parallel and len(consulted) > 1:
            # Parallel legs: spans open when the legs are dispatched (their
            # durations include pool queueing, which is real wait).
            legs = ([span.child("shard.leg").set("shard", shard.index)
                     for shard in consulted] if span
                    else [NULL_SPAN] * len(consulted))
            outputs = list(self.ensure_pool().map(
                lambda pair: run(pair[0], pair[1]),
                zip(consulted, legs)))
        else:
            outputs = []
            for shard in consulted:
                self._check_deadline(ctx,
                                     f"scatter leg to shard {shard.index}")
                leg = (span.child("shard.leg").set("shard", shard.index)
                       if span else NULL_SPAN)
                outputs.append(run(shard, leg))
        survivors = [(shard, result)
                     for shard, result in zip(consulted, outputs)
                     if result is not None]
        return ([shard for shard, _ in survivors],
                [result for _, result in survivors])

    def _leg_skip_reason(self, shard: Shard, query: TopKQuery,
                         gathered: List[float]) -> Optional[str]:
        """Why ``shard`` can be skipped for ``query``, or ``None`` to run it.

        ``gathered`` holds the query's k best scores seen so far, sorted.
        A shard whose ranking-range score floor *strictly* exceeds the
        gathered k-th score cannot contribute: every tuple it holds scores
        at least the floor, so none can enter the top-k or tie its
        boundary.  Shared by the single-query bounded scatter and the
        fused-group legs so both paths skip (and report) identically.
        """
        if len(gathered) < query.k:
            return None
        floor = shard.stats.score_floor(query.function)
        kth = gathered[-1]
        if floor > kth:
            return f"score floor {floor:.6g} > k-th score {kth:.6g}"
        return None

    @staticmethod
    def _fold_gathered(gathered: List[float], result: QueryResult,
                       k: int) -> None:
        """Fold one leg's scores into the query's sorted k-best prefix."""
        if result.scores:
            gathered.extend(float(score) for score in result.scores)
            gathered.sort()
            del gathered[k:]

    def _run_shards_bounded(self, ordered: List[Shard], query: TopKQuery,
                            span=NULL_SPAN, ctx=None, ledger=None,
                            ) -> Tuple[List[Shard], List[QueryResult],
                                       Tuple[Tuple[int, str], ...]]:
        """Cost-ordered sequential scatter with bound-based leg skipping.

        ``ordered`` is the :meth:`_leg_order` of the surviving shards;
        once k candidates are gathered, a
        remaining shard whose ranking-range score floor *strictly* exceeds
        the current k-th gathered score is skipped — every tuple it holds
        scores at least the floor, so none can enter the top-k or tie its
        boundary (a tie would need a score exactly equal to the k-th, which
        a strictly larger floor rules out).  The k-th score only tightens
        as more legs run, so a skip decided against an early bound stays
        sound for the final answer: gathered results are bit-identical to
        the exhaustive scatter.

        Returns the executed shards (restored to index order, so gathering
        and reporting are unchanged), their results, and the skipped legs
        with reasons.
        """
        gathered: List[float] = []  # k smallest scores seen so far, sorted
        executed: List[Tuple[Shard, QueryResult]] = []
        skipped: List[Tuple[int, str]] = []
        ledgers = (ledger,) if ledger is not None else ()
        for shard in ordered:
            self._check_deadline(ctx, f"scatter leg to shard {shard.index}")
            reason = self._leg_skip_reason(shard, query, gathered)
            if reason is not None:
                skipped.append((shard.index, reason))
                self._m_legs_skipped.inc()
                if span:
                    (span.child("shard.leg").set("shard", shard.index)
                     .set("skipped", reason).finish())
                continue
            leg = (span.child("shard.leg").set("shard", shard.index)
                   if span else NULL_SPAN)
            try:
                result = self._leg_execute(shard, query, leg, ctx, ledgers)
            except ShardWorkerError:
                if ctx is None or not ctx.allow_partial:
                    raise
                continue
            executed.append((shard, result))
            self._fold_gathered(gathered, result, query.k)
        executed.sort(key=lambda pair: pair[0].index)
        return ([shard for shard, _ in executed],
                [result for _, result in executed],
                tuple(skipped))

    # ------------------------------------------------------------------
    # gathering
    # ------------------------------------------------------------------
    def _gather_topk(self, query, consulted: List[Shard],
                     shard_results: List[QueryResult]) -> QueryResult:
        """K-way merge of per-shard top-k lists under ``(score, tid)``.

        Each shard's answer is already sorted by ``(score, local tid)`` and
        the shard's tid map is ascending, so mapping local to global tids
        preserves the canonical order — the merged prefix of length k is
        exactly the global top-k a single-relation engine would return.
        """
        streams = []
        for shard, result in zip(consulted, shard_results):
            streams.append([
                topk_order_key(int(shard.tid_map[local_tid]), score)
                for local_tid, score in zip(result.tids, result.scores)
            ])
        merged = heapq.merge(*streams)
        top: List[Tuple[int, float]] = []
        for score, tid in merged:
            top.append((tid, score))
            if len(top) >= query.k:
                break
        return QueryResult(
            tids=tuple(tid for tid, _ in top),
            scores=tuple(score for _, score in top),
            disk_accesses=sum(r.disk_accesses for r in shard_results),
            states_generated=sum(r.states_generated for r in shard_results),
            peak_heap_size=max((r.peak_heap_size for r in shard_results), default=0),
            tuples_evaluated=sum(r.tuples_evaluated for r in shard_results),
        )

    def _gather_skyline(self, query, consulted: List[Shard],
                        shard_results: List[SkylineResult]) -> SkylineResult:
        """Cross-shard dominance re-check over the union of local skylines.

        The global skyline is a subset of the union of shard-local skylines
        (a globally undominated point is undominated within its shard), so
        re-running the dominance test over the union — in the query's
        mapped space for dynamic skylines — yields exactly the answer a
        single-relation engine computes.
        """
        targets = list(query.targets) if query.targets is not None else None
        global_tids = [int(shard.tid_map[local_tid])
                       for shard, result in zip(consulted, shard_results)
                       for local_tid in result.tids]
        candidates: List[Tuple[int, Tuple[float, ...]]] = []
        if global_tids:
            values = self.manager.relation.ranking_values_bulk(
                global_tids, query.preference_dims)
            candidates = [(tid, transform_dynamic(row, targets))
                          for tid, row in zip(global_tids, values)]
        survivors = skyline_of(candidates)
        return SkylineResult(
            tids=tuple(sorted(tid for tid, _ in survivors)),
            disk_accesses=sum(r.disk_accesses for r in shard_results),
            signature_accesses=sum(r.signature_accesses for r in shard_results),
            peak_heap_size=max((r.peak_heap_size for r in shard_results), default=0),
            nodes_expanded=sum(r.nodes_expanded for r in shard_results),
            extra={"cross_shard_candidates": float(len(candidates))},
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """One merged statistics view of the whole sharded stack.

        Callers (``ServiceStats``, benchmarks, operators) read a single
        mapping instead of poking per-shard executors.  Every merged
        per-shard key is uniformly ``shard_``-prefixed:

        * ``result_*`` — the scatter-level front-door result cache, same
          keys as the unsharded executor's;
        * ``shard_bound_*`` — the per-shard lower-bound caches, summed
          (rate recomputed over the sums);
        * ``fused_groups`` / ``fused_queries`` — *front-door* fusion: how
          many same-function groups (and member queries) this executor's
          ``execute_many`` scattered as one leg per shard;
        * ``shard_plans_reused`` and ``shard_fused_groups`` /
          ``shard_fused_queries`` — the per-shard engine counters, summed
          (a group fused on N shards counts once per shard leg that
          actually fused it, so the shard sums can exceed the front-door
          counts);
        * ``shard_result_*`` — the per-shard result caches, summed;
        * ``shards_built`` — how many shard stacks exist at all (lazily
          built stacks the statistics always pruned are absent from every
          sum above).

        The historically bare merged keys — ``entries`` / ``hits`` /
        ``misses`` / ``hit_rate`` / ``plans_reused`` — warned as
        deprecated aliases for three releases and are now gone; only the
        prefixed spellings are emitted.
        """
        stats: Dict[str, float] = OrderedDict(self.result_cache.stats())
        summed = ("entries", "hits", "misses", "plans_reused")
        totals = {name: 0.0 for name in summed}
        shard_sums = {"shard_fused_groups": "fused_groups",
                      "shard_fused_queries": "fused_queries",
                      "shard_result_entries": "result_entries",
                      "shard_result_hits": "result_hits",
                      "shard_result_misses": "result_misses",
                      "shard_result_invalidations": "result_invalidations"}
        shard_totals = {name: 0.0 for name in shard_sums}
        built = self.manager.built_executors()
        for executor in built.values():
            shard_stats = executor.cache_stats()
            for name in summed:
                totals[name] += float(shard_stats.get(name, 0.0))
            for name, source in shard_sums.items():
                shard_totals[name] += float(shard_stats.get(source, 0.0))
        lookups = totals["hits"] + totals["misses"]
        stats["shard_bound_entries"] = totals["entries"]
        stats["shard_bound_hits"] = totals["hits"]
        stats["shard_bound_misses"] = totals["misses"]
        stats["shard_bound_hit_rate"] = (totals["hits"] / lookups
                                         if lookups else 0.0)
        stats["shard_plans_reused"] = totals["plans_reused"]
        stats["fused_groups"] = float(self.fused_groups)
        stats["fused_queries"] = float(self.fused_queries)
        stats.update(shard_totals)
        stats["shards_built"] = float(len(built))
        return stats

    def _metric_registries(self) -> List[MetricsRegistry]:
        """Every registry :meth:`metrics_snapshot` merges — overridable.

        The base list is this front door's own registry plus every built
        in-process shard engine's; :class:`ProcessScatterExecutor` extends
        it with replicas rebuilt from the worker-shipped registry states.
        """
        registries = [self.metrics]
        for executor in self.manager.built_executors().values():
            registry = getattr(executor, "metrics", None)
            if registry is not None:
                registries.append(registry)
        return registries

    def metrics_snapshot(self) -> Dict[str, float]:
        """One flat view over the whole sharded stack's registries.

        Merges this front door's ``shard.*`` registry with every built
        shard engine's ``engine.*`` registry (counters summed, histogram
        reservoirs pooled — see :func:`repro.obs.merged_snapshot`), then
        folds :meth:`cache_stats` in under the ``shard.`` prefix.
        """
        snap = merged_snapshot(self._metric_registries())
        for name, value in self.cache_stats().items():
            snap[f"shard.{name}"] = float(value)
        return snap

    def explain_analyze(self, query) -> str:
        """Run ``query`` traced (result caches bypassed at the front door)
        and render the span tree with estimated vs. actual work.

        The tree covers the scatter: every leg (including legs skipped by
        the k-th-score bound, with their reasons), each shard engine's
        plan/run children, and the gather.
        """
        from repro.obs.explain import analyze_with

        return analyze_with(self, query, "shard.explain_analyze")


class ProcessScatterExecutor(ScatterGatherExecutor):
    """Scatter/gather whose heavy legs run in per-shard worker *processes*.

    The thread-pool scatter interleaves Python scoring on one core; this
    executor keeps the same prune/scatter/gather machinery (and the same
    bit-identical answers) but routes each heavy leg to a long-lived
    :class:`~repro.shard.worker.ShardWorker` process:

    * workers spawn **lazily**, exactly like the manager's lazy in-process
      stacks — the first offloaded leg to a shard pays the spawn, later
      legs reuse the worker;
    * the shard's relation data is copied **once** into
      ``multiprocessing.shared_memory`` at spawn; after that, legs send
      only pickled queries and gather only top-k tuples over a pipe;
    * the thread/process crossover is priced by the cost model: a scatter
      offloads only when some shard's
      :meth:`~repro.engine.cost.CostModel.scatter_leg_cost` exceeds
      :attr:`~repro.engine.cost.CostModel.process_leg_overhead` (the
      calibratable per-leg IPC term).  Small relations therefore keep
      running in-process/threaded — spawning a worker to score a thousand
      rows would cost more than it saves.  Setting the overhead to ``0``
      forces processes; ``float("inf")`` forces threads;
    * with ``parallel=True`` the legs are dispatched on the inherited
      thread pool; each dispatching thread blocks on its worker's pipe
      with the GIL released, so N shards score on N cores;
    * ``insert``/``reshard`` reach workers through the manager's
      serialized write path: :meth:`_on_mutation` tears down workers whose
      shard data changed (their shared-memory copy is stale; the next leg
      respawns them over fresh data) and broadcasts a predicate-aware
      ``invalidate`` to the untouched ones so worker-side result caches
      never serve a stale answer;
    * every reply ships the worker engine's metrics-registry state and
      ``cache_stats()`` back; :meth:`cache_stats` and
      :meth:`metrics_snapshot` fold them in alongside the in-process
      stacks, so observability is one merged view regardless of where a
      leg ran;
    * a killed worker surfaces as
      :class:`~repro.errors.ShardWorkerError` naming the shard and exit
      code — never a hang — and is respawned on the next leg to that
      shard.

    Workers rebuild their engines from ``Executor.for_relation`` keyword
    arguments, so a manager constructed with a custom ``executor_factory``
    (a closure that cannot be shipped to a spawned process) is rejected at
    construction time.

    ``mp_context`` selects the multiprocessing start method; the default
    ``"spawn"`` is safe with the serving layer's threads and ships the
    parent's ``sys.path`` so workers import this package uninstalled.

    ``recv_timeout`` bounds every worker reply wait (default two
    minutes — generous enough that no honest leg ever trips it, tight
    enough that a genuinely wedged worker always surfaces; ``None``
    restores the old unbounded wait).  A per-request deadline tightens
    the bound further, and a worker that misses it is killed — reported
    with ``timed_out=True`` — and respawned on the next leg.  The fault
    kwargs inherited from the base class apply here too, with one
    difference: an attached ``fault_injector`` is handed to the workers,
    so injected crashes are real process deaths and injected hangs are
    real unresponsive pipes.
    """

    def __init__(self, manager: ShardManager, parallel: bool = False,
                 max_workers: Optional[int] = None,
                 result_cache: Optional[ResultCache] = None,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None, mp_context="spawn",
                 recv_timeout: Optional[float] = 120.0,
                 retry_policy=None,
                 breaker_policy=None,
                 fault_injector=None,
                 allow_partial: bool = False) -> None:
        if manager.has_custom_factory:
            raise PlanningError(
                "ProcessScatterExecutor rebuilds shard engines inside "
                "worker processes from Executor.for_relation keyword "
                "arguments; a custom executor_factory cannot be shipped "
                "to a spawned process — use ScatterGatherExecutor (threads) "
                "for custom shard stacks")
        super().__init__(manager, parallel=parallel, max_workers=max_workers,
                         result_cache=result_cache, cost_model=cost_model,
                         metrics=metrics, tracer=tracer,
                         retry_policy=retry_policy,
                         breaker_policy=breaker_policy,
                         fault_injector=fault_injector,
                         allow_partial=allow_partial)
        self.recv_timeout = recv_timeout
        # Injection moves into the workers: crashes are real process
        # deaths there, and legs that stay in-process (below the
        # thread/process crossover) run un-injected.
        self._leg_injection = False
        self._ctx = (multiprocessing.get_context(mp_context)
                     if isinstance(mp_context, str) else mp_context)
        self._workers: Dict[int, ShardWorker] = {}
        self._worker_lock = threading.Lock()
        #: Latest worker-shipped ``(metrics state, cache stats)`` per
        #: shard index.  Kept after a worker is torn down so its last
        #: observed work stays in the merged views until a respawned
        #: worker reports fresh numbers.
        self._worker_obs: Dict[int, Tuple[dict, Dict[str, float]]] = {}
        self._m_proc_legs = self.metrics.counter("shard.process_legs")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _offload(self, queries: List) -> bool:
        """Whether this scatter clears the thread/process crossover.

        True when any (query, shard) leg's modeled cost exceeds the
        per-leg IPC overhead — one heavy leg is enough to offload the
        whole scatter, keeping every leg of one query (and every rider of
        one fused leg) in the same mode.
        """
        overhead = self.cost_model.process_leg_overhead
        return any(
            self.cost_model.scatter_leg_cost(query, shard.stats) > overhead
            for query in queries for shard in self.manager.shards)

    def _worker_for(self, shard: Shard) -> ShardWorker:
        """The shard's worker process, spawned on first use, respawned if dead."""
        with self._worker_lock:
            worker = self._workers.get(shard.index)
            if worker is not None and not worker.alive:
                self._workers.pop(shard.index, None)
                worker.close()
                worker = None
            if worker is None:
                worker = ShardWorker(shard, self.manager.executor_kwargs,
                                     self._ctx,
                                     recv_timeout=self.recv_timeout,
                                     injector=self.fault_injector)
                self._workers[shard.index] = worker
            return worker

    def _note_worker_obs(self, index: int, obs) -> None:
        if obs is not None:
            with self._worker_lock:
                self._worker_obs[index] = obs

    def _shard_plan(self, shard: Shard, query) -> QueryPlan:
        if not self._offload([query]):
            return super()._shard_plan(shard, query)
        plan, obs = self._worker_for(shard).request("plan", query)
        self._note_worker_obs(shard.index, obs)
        return plan

    def _leg_timeout(self, deadline) -> Optional[float]:
        """The pipe-wait bound for one leg: recv timeout ∧ deadline room.

        A request deadline tightens (never loosens) the configured
        ``recv_timeout``, so a hung worker is detected within whichever
        bound is closer.
        """
        if deadline is None:
            return None  # the worker applies its own recv_timeout
        return deadline.bound(self.recv_timeout)

    def _shard_execute(self, shard: Shard, query, leg,
                       deadline=None) -> QueryResult:
        if not self._offload([query]):
            return super()._shard_execute(shard, query, leg,
                                          deadline=deadline)
        result, obs = self._worker_for(shard).request(
            "execute", query, timeout=self._leg_timeout(deadline))
        self._note_worker_obs(shard.index, obs)
        self._m_proc_legs.inc()
        if leg:
            leg.set("worker", "process")
        return result

    def _shard_execute_many(self, shard: Shard, leg_queries: List,
                            leg, deadline=None) -> List:
        if not self._offload(leg_queries):
            return super()._shard_execute_many(shard, leg_queries, leg,
                                               deadline=deadline)
        results, obs = self._worker_for(shard).request(
            "execute_many", leg_queries, timeout=self._leg_timeout(deadline))
        self._note_worker_obs(shard.index, obs)
        self._m_proc_legs.inc()
        if leg:
            leg.set("worker", "process")
        return results

    def _scatter_details(self, query, consulted, pruned, shard_backends,
                         skipped=(), order=None):
        """The base details plus which mode this query's own cost selects.

        A fused-group rider can piggyback on a heavier member's process
        leg, so a rider's ``scatter_mode`` reflects its solo choice, not
        necessarily where every one of its legs ran.
        """
        details = super()._scatter_details(query, consulted, pruned,
                                           shard_backends, skipped, order)
        details["scatter_mode"] = ("processes" if self._offload([query])
                                   else "threads")
        return details

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def _on_mutation(self, row=None) -> None:
        super()._on_mutation(row=row)
        with self._worker_lock:
            workers = list(self._workers.items())
        shards = {shard.index: shard for shard in self.manager.shards}
        for index, worker in workers:
            shard = shards.get(index)
            stale = (shard is None
                     or id(shard.relation) != worker.relation_id
                     or shard.relation.num_tuples != worker.num_rows)
            if stale:
                # The worker's shared-memory copy no longer matches the
                # shard (the row landed there, or a reshard replaced it);
                # drop it — the next leg respawns over fresh data.
                with self._worker_lock:
                    self._workers.pop(index, None)
                worker.close()
            else:
                try:
                    worker.request("invalidate", row)
                except ShardWorkerError:
                    with self._worker_lock:
                        self._workers.pop(index, None)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """The merged view of :meth:`ScatterGatherExecutor.cache_stats`,
        with the worker-shipped per-shard counters folded into the same
        ``shard_*`` sums as the in-process stacks, plus ``shard_workers``
        (live worker processes).
        """
        stats = super().cache_stats()
        folds = {"shard_bound_entries": "entries",
                 "shard_bound_hits": "hits",
                 "shard_bound_misses": "misses",
                 "shard_plans_reused": "plans_reused",
                 "shard_fused_groups": "fused_groups",
                 "shard_fused_queries": "fused_queries",
                 "shard_result_entries": "result_entries",
                 "shard_result_hits": "result_hits",
                 "shard_result_misses": "result_misses",
                 "shard_result_invalidations": "result_invalidations"}
        with self._worker_lock:
            observed = [cache for _, cache in self._worker_obs.values()]
            live = sum(1 for worker in self._workers.values() if worker.alive)
        for cache in observed:
            for target, source in folds.items():
                stats[target] += float(cache.get(source, 0.0))
        lookups = stats["shard_bound_hits"] + stats["shard_bound_misses"]
        stats["shard_bound_hit_rate"] = (stats["shard_bound_hits"] / lookups
                                         if lookups else 0.0)
        stats["shard_workers"] = float(live)
        return stats

    def _metric_registries(self) -> List[MetricsRegistry]:
        registries = super()._metric_registries()
        with self._worker_lock:
            states = [state for state, _ in self._worker_obs.values()]
        registries.extend(MetricsRegistry.from_state(state)
                          for state in states)
        return registries

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down every worker process, then the thread pools.

        Deterministic: after :meth:`close` returns no worker process is
        alive and both shared-memory blocks of every worker are unlinked.
        Like the base class, the executor stays usable — the next
        offloaded leg respawns its worker.
        """
        with self._worker_lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            worker.close()
        super().close()
