"""The shard manager: split a relation, own per-shard engine stacks.

:class:`ShardManager` applies a :class:`~repro.shard.policy.ShardingPolicy`
to a relation, materializes one sub-relation per shard (rows keep their
relative order, so a shard's local tid order is also its global tid order),
computes :class:`~repro.shard.stats.ShardStatistics`, and builds the
per-shard engine stacks lazily through ``Executor.for_relation`` — a shard
the planner always prunes never pays index construction.

Mutation goes through the manager: :meth:`insert` routes a new row to its
owning shard and :meth:`reshard` re-splits under a new policy.  Both drop
the affected per-shard stacks and fire the registered invalidation hooks so
every result cache layered on top (per-shard and scatter/gather) is cleared
before a stale answer can be served.
"""

from __future__ import annotations

import weakref

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.engine import Executor
from repro.errors import PlanningError
from repro.shard.policy import ShardingPolicy
from repro.shard.stats import ShardStatistics
from repro.storage.table import Relation


@dataclass
class Shard:
    """One horizontal slice of the base relation."""

    index: int
    relation: Relation
    #: Global tid of every local row, ascending (local tid ``i`` is global
    #: tid ``tid_map[i]``).
    tid_map: np.ndarray
    stats: ShardStatistics


class ShardManager:
    """Splits a relation into shards and owns their engine stacks.

    ``executor_factory`` customizes how a shard's engine stack is built; it
    receives the shard's relation and must return an
    :class:`~repro.engine.Executor`.  By default
    ``Executor.for_relation(shard.relation, **executor_kwargs)`` is used.
    """

    def __init__(self, relation: Relation, policy: ShardingPolicy,
                 executor_factory: Optional[Callable[[Relation], Executor]] = None,
                 **executor_kwargs: object) -> None:
        self.relation = relation
        self.policy = policy
        self._executor_factory = executor_factory
        self._executor_kwargs = executor_kwargs
        self._executors: Dict[int, Executor] = {}
        self._invalidation_hooks: List[Callable[[], None]] = []
        self.shards: List[Shard] = []
        self._split()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _split(self) -> None:
        assignment = self.policy.assign(self.relation)
        if assignment.shape != (self.relation.num_tuples,):
            raise PlanningError("policy assignment must cover every row once")
        if assignment.size and (assignment.min() < 0
                                or assignment.max() >= self.policy.num_shards):
            raise PlanningError(
                f"policy assigned shard indexes outside "
                f"[0, {self.policy.num_shards}); rows would be silently lost")
        shards: List[Shard] = []
        selection = self.relation.selection_matrix()
        ranking = self.relation.ranking_matrix()
        for index in range(self.policy.num_shards):
            tid_map = np.nonzero(assignment == index)[0]
            sub = Relation(
                self.relation.schema,
                selection[tid_map].copy(),
                ranking[tid_map].copy(),
                name=f"{self.relation.name}#s{index}",
            )
            shards.append(Shard(index=index, relation=sub, tid_map=tid_map,
                                stats=ShardStatistics.of(index, sub)))
        self.shards = shards
        self._executors.clear()

    @property
    def num_shards(self) -> int:
        """Number of shards under management."""
        return self.policy.num_shards

    @property
    def has_custom_factory(self) -> bool:
        """Whether shard stacks come from a caller-supplied factory.

        Process-scatter workers rebuild their engines from
        :attr:`executor_kwargs` in a spawned process; a closure factory
        cannot make that trip, so the process executor refuses managers
        for which this is true.
        """
        return self._executor_factory is not None

    @property
    def executor_kwargs(self) -> Dict[str, object]:
        """A copy of the ``Executor.for_relation`` keyword arguments.

        The exact arguments the default (factory-less) build path uses —
        shard worker processes rebuild bit-identical engine stacks from
        them.
        """
        return dict(self._executor_kwargs)

    def executor_for(self, shard: Shard) -> Executor:
        """The shard's engine stack, built on first use and then reused."""
        executor = self._executors.get(shard.index)
        if executor is None:
            if self._executor_factory is not None:
                executor = self._executor_factory(shard.relation)
            else:
                executor = Executor.for_relation(shard.relation,
                                                 **self._executor_kwargs)
            # The shard layer already profiled this sub-relation; hand the
            # profile to the stack's cost planner so it is never re-scanned.
            catalog = getattr(executor, "statistics", None)
            if catalog is not None:
                catalog.seed(shard.relation, shard.stats)
            self._executors[shard.index] = executor
        return executor

    def built_executors(self) -> Dict[int, Executor]:
        """The per-shard engine stacks built so far, keyed by shard index.

        A snapshot for observers (``ScatterGatherExecutor.cache_stats``
        aggregates per-shard counters through it); stacks are *not* forced
        into existence, so a shard the statistics always pruned stays
        absent and never pays index construction just to be counted.
        """
        return dict(self._executors)

    # ------------------------------------------------------------------
    # invalidation plumbing
    # ------------------------------------------------------------------
    def add_invalidation_hook(
            self, hook: Callable[[Optional[Mapping[str, object]]], None],
            ) -> None:
        """Register a callback fired whenever managed data changes.

        Hooks receive one argument: the inserted row when the mutation was
        a single :meth:`insert` (so layered caches can invalidate
        predicate-aware, dropping only the entries the row can affect), or
        ``None`` for a blanket change (``reshard``, explicit flush).

        Bound methods are held via :class:`weakref.WeakMethod`, so a
        discarded caller (e.g. a per-request scatter/gather executor) is
        dropped automatically instead of leaking through the manager; plain
        callables are held strongly.
        """
        try:
            self._invalidation_hooks.append(weakref.WeakMethod(hook))
        except TypeError:
            self._invalidation_hooks.append(lambda: hook)

    def _invalidate(self, row: Optional[Mapping[str, object]] = None) -> None:
        for index, executor in self._executors.items():
            executor.invalidate_results(row=row)
            # invalidate_results also drops the executor's statistics
            # catalog; the surviving executors belong to shards the
            # mutation did not touch (the owner's stack was popped), so
            # their ShardStatistics are still exact — re-seed them rather
            # than letting the next plan re-scan an unchanged shard.
            catalog = getattr(executor, "statistics", None)
            if catalog is not None:
                shard = self.shards[index]
                catalog.seed(shard.relation, shard.stats)
        alive = []
        for ref in self._invalidation_hooks:
            hook = ref()
            if hook is not None:
                hook(row)
                alive.append(ref)
        self._invalidation_hooks = alive

    def invalidate_caches(self) -> None:
        """Flush every result cache in the stack: per-shard and hooked.

        Mutations call this automatically; benchmarks call it explicitly to
        time real scatter/gather execution instead of memoized answers.
        """
        self._invalidate()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, object]) -> int:
        """Append ``row`` to the base relation and its owning shard.

        Returns the new global tid.  The owning shard's engine stack is
        dropped (its indexes no longer cover the shard) and every
        invalidation hook fires, so no cached result survives the insert.
        """
        global_tid = self.relation.append(row)
        owner = self.policy.shard_for_row(self.relation, row, global_tid)
        shard = self.shards[owner]
        shard.relation.append(row)
        shard.tid_map = np.append(shard.tid_map, global_tid)
        if shard.relation.num_tuples == 1:
            # First row of a previously empty shard: initialize the stats
            # (ranking ranges have no empty-shard representation to fold
            # into); afterwards inserts fold in incrementally in O(dims).
            shard.stats = ShardStatistics.of(owner, shard.relation)
        else:
            shard.stats.add_row(row)
        self._executors.pop(owner, None)
        self._invalidate(row=row)
        return global_tid

    def reshard(self, policy: ShardingPolicy) -> None:
        """Re-split the base relation under ``policy``, dropping all stacks."""
        self.policy = policy
        self._split()
        self._invalidate()
