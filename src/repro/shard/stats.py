"""Per-shard statistics the shard planner prunes, orders, and costs with.

:class:`ShardStatistics` is the shard-flavoured
:class:`~repro.engine.cost.RelationStatistics`: the same profile (row
count, distinct selection values, selection cardinalities, ranking
``[min, max]`` ranges) plus the shard index and an O(dims) incremental
:meth:`add_row` fold for manager-routed inserts.  Because the engine's
predicates are equality conditions over selection dimensions, a shard
whose value set does not contain a predicate's required value provably
holds no matching tuple — ``can_match`` prunes it before any backend is
built or run, and the decision is recorded on the gathered plan so it
stays explainable.

The profile's selectivity and ranking-range methods feed the cost-based
planner and the scatter gatherer: legs are ordered by
:meth:`~repro.engine.cost.CostModel.scatter_key` (score floor, then
expected matches) and a leg whose :meth:`score_floor` cannot beat the
gathered k-th score is skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.cost import RelationStatistics
from repro.storage.table import Relation


@dataclass
class ShardStatistics(RelationStatistics):
    """Summary of one shard used for pruning, costing, and leg ordering."""

    shard_index: int = 0

    _scope_word = "shard"

    @classmethod
    def of(cls, shard_index: int, relation: Relation) -> "ShardStatistics":
        """Compute statistics over one shard's relation."""
        return super().of(relation, shard_index=shard_index)

    def add_row(self, row) -> None:
        """Fold one inserted row into the statistics in O(dims).

        Produces the same statistics as recomputing :meth:`of` over the
        grown shard, without re-scanning every column per insert.
        """
        self.num_tuples += 1
        for dim in list(self.selection_values):
            value = int(row[dim])
            if value not in self.selection_values[dim]:
                self.selection_values[dim] = self.selection_values[dim] | {value}
                self.selection_cardinalities[dim] += 1
        for dim, (low, high) in list(self.ranking_ranges.items()):
            value = float(row[dim])
            self.ranking_ranges[dim] = (min(low, value), max(high, value))
