"""Per-shard statistics the shard planner prunes with.

:class:`ShardStatistics` summarizes one shard: row count, the distinct
values of every selection dimension, and the bounding ``[min, max]`` range
of every ranking dimension.  Because the engine's predicates are equality
conditions over selection dimensions, a shard whose value set does not
contain a predicate's required value provably holds no matching tuple —
the shard can be skipped before any backend is built or run, and the
decision is recorded on the gathered plan so it stays explainable.

:attr:`ShardStatistics.ranking_ranges` is not consulted by
:meth:`ShardStatistics.can_match` — equality predicates never touch
ranking dimensions.  The ranges are maintained for the cost-based planner
and range-predicate support on the roadmap, which will order and prune
scatter legs by ranking bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.query import Predicate
from repro.storage.table import Relation


@dataclass
class ShardStatistics:
    """Summary of one shard used for scatter-time pruning."""

    shard_index: int
    num_tuples: int
    #: Distinct coded values per selection dimension.
    selection_values: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    #: Distinct-value count per selection dimension (cardinalities).
    selection_cardinalities: Dict[str, int] = field(default_factory=dict)
    #: Bounding ``(min, max)`` per ranking dimension.
    ranking_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @classmethod
    def of(cls, shard_index: int, relation: Relation) -> "ShardStatistics":
        """Compute statistics over one shard's relation."""
        values: Dict[str, FrozenSet[int]] = {}
        cards: Dict[str, int] = {}
        for dim in relation.selection_dims:
            distinct = np.unique(relation.selection_column(dim))
            values[dim] = frozenset(int(v) for v in distinct)
            cards[dim] = int(distinct.size)
        ranges: Dict[str, Tuple[float, float]] = {}
        if relation.num_tuples:
            for dim in relation.ranking_dims:
                column = relation.ranking_column(dim)
                ranges[dim] = (float(column.min()), float(column.max()))
        return cls(shard_index=shard_index, num_tuples=relation.num_tuples,
                   selection_values=values, selection_cardinalities=cards,
                   ranking_ranges=ranges)

    def add_row(self, row) -> None:
        """Fold one inserted row into the statistics in O(dims).

        Produces the same statistics as recomputing :meth:`of` over the
        grown shard, without re-scanning every column per insert.
        """
        self.num_tuples += 1
        for dim in list(self.selection_values):
            value = int(row[dim])
            if value not in self.selection_values[dim]:
                self.selection_values[dim] = self.selection_values[dim] | {value}
                self.selection_cardinalities[dim] += 1
        for dim, (low, high) in list(self.ranking_ranges.items()):
            value = float(row[dim])
            self.ranking_ranges[dim] = (min(low, value), max(high, value))

    def can_match(self, predicate: Predicate) -> Tuple[bool, Optional[str]]:
        """Whether any tuple of this shard can satisfy ``predicate``.

        Returns ``(True, None)`` when the shard must be consulted, or
        ``(False, reason)`` with a human-readable pruning reason.  The test
        is conservative: ``False`` is only returned when the shard provably
        contains no matching tuple, so pruning never changes results.
        """
        if self.num_tuples == 0:
            return False, "empty shard"
        for dim, value in predicate.conditions:
            known = self.selection_values.get(dim)
            if known is not None and int(value) not in known:
                return False, f"{dim}={value} outside shard values"
        return True, None
