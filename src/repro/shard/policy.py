"""Sharding policies: how a relation's rows are spread over N shards.

A :class:`ShardingPolicy` maps every row of a relation to a shard index in
``[0, num_shards)`` and can place a *new* row (insert routing) the same
way.  Two families are provided:

* :class:`HashShardingPolicy` — round-robin by hashed row position; spreads
  load evenly but gives the planner no pruning structure.
* :class:`RangeShardingPolicy` — contiguous value ranges of one dimension,
  with boundaries from the library's equi-width or equi-depth partitioners
  (Sections 3.2.2 / 3.6.2 reused one level up); a shard's bounding range
  lets the shard planner prove that a predicate cannot match it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Tuple

import numpy as np

from repro.errors import PlanningError
from repro.partition.equidepth import equidepth_boundaries
from repro.partition.equiwidth import equiwidth_boundaries
from repro.storage.table import Relation

#: Knuth's multiplicative hash constant (2^32 / phi), used to decorrelate
#: shard assignment from row order without any per-row state.
_KNUTH = 2654435761


class ShardingPolicy(ABC):
    """Assigns rows (existing and new) of a relation to shards."""

    #: Number of shards this policy produces.
    num_shards: int

    @abstractmethod
    def assign(self, relation: Relation) -> np.ndarray:
        """Shard index of every row, as an ``(T,)`` int array."""

    @abstractmethod
    def shard_for_row(self, relation: Relation, row: Mapping[str, object],
                      global_tid: int) -> int:
        """Shard that owns a new ``row`` appended as ``global_tid``."""

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable description for plans and ``explain``."""


class HashShardingPolicy(ShardingPolicy):
    """Hash-by-row: shard ``(tid * knuth) mod 2^32 mod N``.

    Deterministic, stateless, and uniform — but value-oblivious, so every
    non-empty shard must be consulted for every query.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise PlanningError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards

    def _shard_of(self, tids: np.ndarray) -> np.ndarray:
        return ((tids.astype(np.uint64) * _KNUTH) % (2 ** 32)) % self.num_shards

    def assign(self, relation: Relation) -> np.ndarray:
        tids = np.arange(relation.num_tuples, dtype=np.int64)
        return self._shard_of(tids).astype(np.int64)

    def shard_for_row(self, relation: Relation, row: Mapping[str, object],
                      global_tid: int) -> int:
        return int(self._shard_of(np.array([global_tid], dtype=np.int64))[0])

    def describe(self) -> str:
        return f"hash({self.num_shards})"


class RangeShardingPolicy(ShardingPolicy):
    """Range-on-dimension: shard ``i`` holds rows with values in range ``i``.

    ``mode="width"`` spaces the boundaries evenly over the column's domain
    (equi-width); ``mode="depth"`` places them at quantiles so every shard
    holds roughly the same number of rows (equi-depth).  The dimension may
    be a selection or a ranking dimension; sharding on a selection dimension
    is what lets equality predicates prune shards.

    Boundaries are frozen at construction from the relation the policy is
    built for; later inserts route by the same boundaries (values outside
    the original domain clamp into the first/last shard).
    """

    def __init__(self, relation: Relation, dim: str, num_shards: int,
                 mode: str = "width") -> None:
        if num_shards <= 0:
            raise PlanningError(f"num_shards must be positive, got {num_shards}")
        if mode not in ("width", "depth"):
            raise PlanningError(f"mode must be 'width' or 'depth', got {mode!r}")
        if not (relation.schema.is_selection(dim) or relation.schema.is_ranking(dim)):
            raise PlanningError(f"unknown dimension {dim!r} for range sharding")
        self.dim = dim
        self.num_shards = num_shards
        self.mode = mode
        values = self._column(relation)
        if mode == "width":
            self.boundaries = equiwidth_boundaries(values, num_shards)
        else:
            self.boundaries = equidepth_boundaries(values, num_shards)

    def _column(self, relation: Relation) -> np.ndarray:
        if relation.schema.is_selection(self.dim):
            return relation.selection_column(self.dim).astype(np.float64)
        return relation.ranking_column(self.dim)

    def _shard_of_values(self, values: np.ndarray) -> np.ndarray:
        # Interior boundaries only: values at or below boundary i fall into
        # shard i, everything beyond the last interior boundary into the
        # final shard — so out-of-domain values clamp instead of erroring.
        interior = self.boundaries[1:-1]
        return np.searchsorted(interior, values, side="left").astype(np.int64)

    def assign(self, relation: Relation) -> np.ndarray:
        return self._shard_of_values(self._column(relation))

    def shard_for_row(self, relation: Relation, row: Mapping[str, object],
                      global_tid: int) -> int:
        value = float(row[self.dim])  # type: ignore[arg-type]
        return int(self._shard_of_values(np.array([value]))[0])

    def shard_range(self, shard_index: int) -> Tuple[float, float]:
        """The ``[low, high]`` value range of one shard, for plans/stats."""
        return (float(self.boundaries[shard_index]),
                float(self.boundaries[shard_index + 1]))

    def describe(self) -> str:
        return f"range({self.dim}, {self.num_shards}, {self.mode})"
