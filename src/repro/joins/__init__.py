"""Chapter 6: SPJR (select-project-join-rank) queries over multiple relations."""

from repro.joins.executor import RankJoinExecutor
from repro.joins.optimizer import JoinPlan, RelationPlan, SPJROptimizer
from repro.joins.query_model import (
    JoinCondition,
    JoinResult,
    RelationTerm,
    SPJRQuery,
)
from repro.joins.rank_stream import RankStream, StreamEntry
from repro.joins.system import BooleanStream, RankingCubeJoinSystem

__all__ = [
    "RankJoinExecutor",
    "JoinPlan",
    "RelationPlan",
    "SPJROptimizer",
    "JoinCondition",
    "JoinResult",
    "RelationTerm",
    "SPJRQuery",
    "RankStream",
    "StreamEntry",
    "BooleanStream",
    "RankingCubeJoinSystem",
]
