"""SPJR query optimizer (Section 6.2).

The optimizer makes two decisions:

* **Per relation** (Section 6.2.1): whether the relation should be accessed
  rank-aware (through its ranking cube, streaming tuples in score order) or
  boolean-first (the predicate is so selective that fetching the few
  qualifying tuples outright is cheaper).  The decision compares the
  estimated qualifying cardinality against a rank-access budget derived from
  ``k``.
* **Across relations** (Section 6.2.2): the pull order of the rank-join —
  the relation expected to produce the fewest qualifying tuples drives the
  join, so hash tables of the other relations stay small and the threshold
  tightens quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.joins.query_model import SPJRQuery
from repro.storage.table import RelationStats


@dataclass(frozen=True)
class RelationPlan:
    """Access decision for one relation."""

    relation_name: str
    access: str  # "rank" or "boolean"
    estimated_qualifying: float


@dataclass(frozen=True)
class JoinPlan:
    """Complete plan: per-relation access methods plus the join pull order."""

    relation_plans: Tuple[RelationPlan, ...]
    order: Tuple[str, ...]

    def plan_for(self, relation_name: str) -> RelationPlan:
        """Access plan of one relation."""
        for plan in self.relation_plans:
            if plan.relation_name == relation_name:
                return plan
        raise KeyError(relation_name)


class SPJROptimizer:
    """Cost-based planner for SPJR queries."""

    def __init__(self, rank_access_multiplier: float = 20.0) -> None:
        # A rank stream is preferred while the expected qualifying tuples
        # exceed roughly this multiple of k (pulling a few ordered tuples is
        # then cheaper than materializing the whole boolean filter result).
        self.rank_access_multiplier = rank_access_multiplier

    def plan(self, query: SPJRQuery) -> JoinPlan:
        """Choose per-relation access methods and the join pull order."""
        query.validate()
        relation_plans: List[RelationPlan] = []
        estimates: Dict[str, float] = {}
        for term in query.terms:
            stats = RelationStats.of(term.relation)
            selectivity = stats.selectivity(term.predicate.as_dict)
            qualifying = selectivity * stats.num_tuples
            estimates[term.relation.name] = qualifying
            if term.function is None:
                access = "boolean"
            elif qualifying <= self.rank_access_multiplier * query.k:
                access = "boolean"
            else:
                access = "rank"
            relation_plans.append(RelationPlan(
                relation_name=term.relation.name,
                access=access,
                estimated_qualifying=qualifying,
            ))
        order = tuple(sorted(estimates, key=estimates.get))
        return JoinPlan(relation_plans=tuple(relation_plans), order=order)
