"""The ranking-cube join system (Figure 6.1): cubes + optimizer + executor.

One :class:`SignatureRankingCube` is built per registered relation; an SPJR
query is planned by the optimizer and executed by the rank-join executor
pulling from per-relation rank streams (or boolean-filtered streams when the
optimizer decides the predicate is selective enough).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import QueryError
from repro.joins.executor import RankJoinExecutor
from repro.joins.optimizer import JoinPlan, SPJROptimizer
from repro.joins.query_model import JoinResult, RelationTerm, SPJRQuery
from repro.joins.rank_stream import RankStream, StreamEntry
from repro.query import QueryResult
from repro.signature.cube import SignatureRankingCube
from repro.storage.table import Relation


class BooleanStream(RankStream):
    """Stream for boolean-access relations: filter first, then sort by score."""

    def __init__(self, cube: SignatureRankingCube, predicate, function) -> None:
        super().__init__(cube, predicate, function)

    def _generate(self) -> Iterator[StreamEntry]:
        relation = self.relation
        tids = relation.tids_matching(self.predicate.as_dict)
        scored = [
            (self.function.evaluate_tuple(relation, int(tid)), int(tid)) for tid in tids
        ]
        scored.sort()
        for score, tid in scored:
            self.pulled += 1
            yield StreamEntry(tid=tid, score=float(score))


class RankingCubeJoinSystem:
    """End-to-end SPJR processing over ranking cubes."""

    def __init__(self, relations: Sequence[Relation],
                 rtree_max_entries: int = 32) -> None:
        self.relations: Dict[str, Relation] = {}
        self.cubes: Dict[str, SignatureRankingCube] = {}
        for relation in relations:
            if relation.name in self.relations:
                raise QueryError(f"duplicate relation name {relation.name!r}")
            self.relations[relation.name] = relation
            self.cubes[relation.name] = SignatureRankingCube(
                relation, rtree_max_entries=rtree_max_entries)
        self.optimizer = SPJROptimizer()

    def plan(self, query: SPJRQuery) -> JoinPlan:
        """Expose the optimizer's plan (used by the tests and examples)."""
        return self.optimizer.plan(query)

    def query(self, query: SPJRQuery) -> QueryResult:
        """Plan and execute an SPJR query."""
        query.validate()
        plan = self.optimizer.plan(query)
        streams: Dict[str, RankStream] = {}
        for term in query.terms:
            name = term.relation.name
            cube = self.cubes.get(name)
            if cube is None:
                raise QueryError(f"relation {name!r} is not registered with the system")
            relation_plan = plan.plan_for(name)
            if relation_plan.access == "rank":
                streams[name] = RankStream(cube, term.predicate, term.function)
            else:
                streams[name] = BooleanStream(cube, term.predicate, term.function)
        executor = RankJoinExecutor(query, streams, order=plan.order)
        result = executor.execute()
        result.extra["plan_order"] = float(len(plan.order))
        self.last_detailed: List[JoinResult] = executor.last_results
        return result

    def query_detailed(self, query: SPJRQuery) -> List[JoinResult]:
        """Execute and return full per-relation tid mappings."""
        self.query(query)
        return list(self.last_detailed)
