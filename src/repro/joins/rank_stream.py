"""Rank-aware selection: streaming one relation's tuples in score order.

Section 6.3.1: each participating relation is accessed through its ranking
cube so that tuples satisfying the relation's boolean predicate emerge in
non-decreasing order of the relation's ranking sub-function.  The stream is
the building block the rank-join operator pulls from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.functions.base import RankingFunction
from repro.functions.linear import LinearFunction
from repro.query import Predicate
from repro.signature.cube import SignatureRankingCube
from repro.storage.table import Relation


@dataclass(frozen=True)
class StreamEntry:
    """One tuple emitted by a rank stream."""

    tid: int
    score: float


class RankStream:
    """Best-first stream of predicate-satisfying tuples, cheapest score first."""

    def __init__(self, cube: SignatureRankingCube, predicate: Predicate,
                 function: Optional[RankingFunction]) -> None:
        self.cube = cube
        self.relation = cube.relation
        self.predicate = predicate
        # A relation without a ranking contribution streams in constant score
        # order; a zero-weight linear function keeps the machinery uniform.
        if function is None:
            function = LinearFunction((cube.ranking_dims[0],), (0.0,))
        self.function = function
        self._reader = (cube.signature_reader(predicate)
                        if not predicate.is_empty() else None)
        self._heap: List[Tuple[float, int, int, object]] = []
        self._counter = 0
        self._started = False
        self.pulled = 0

    def _push_node(self, node) -> None:
        if self._reader is not None and not self._reader.test(node.path):
            return
        self._counter += 1
        bound = self.function.lower_bound(node.box)
        heapq.heappush(self._heap, (bound, 0, self._counter, node))

    def _push_entry(self, tid: int, score: float) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (score, 1, self._counter, tid))

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        root = self.cube.rtree.root()
        if self._reader is None or self._reader.test(()):
            self._push_node(root)

    def __iter__(self) -> Iterator[StreamEntry]:
        return self._generate()

    def _generate(self) -> Iterator[StreamEntry]:
        self._start()
        rtree = self.cube.rtree
        dims = rtree.dims
        positions = [dims.index(d) for d in self.function.dims]
        while self._heap:
            score, kind, _, payload = heapq.heappop(self._heap)
            if kind == 1:
                self.pulled += 1
                yield StreamEntry(tid=int(payload), score=float(score))
                continue
            node = payload
            if node.is_leaf:
                for entry in rtree.leaf_entries(node):
                    entry_path = node.path + (entry.position,)
                    if self._reader is not None and not self._reader.test(entry_path):
                        continue
                    value = self.function.evaluate([entry.values[i] for i in positions])
                    self._push_entry(entry.tid, value)
            else:
                for child in rtree.children(node):
                    self._push_node(child)

    def disk_accesses(self) -> int:
        """Physical reads charged to this stream's cube so far."""
        return (self.cube.rtree.pager.stats.physical_reads
                + self.cube.store.pager.stats.physical_reads)
