"""Rank-join execution: multi-way join with list pruning (Sections 6.3.2–6.3.3).

The executor pulls from per-relation rank streams in round-robin, joins new
arrivals against hash tables of everything already seen from the other
relations (the multi-way join), and stops once k complete results score no
worse than the rank-join threshold — the best score any future combination
could reach, given the last scores pulled from each stream.  List pruning
discards seen tuples that can no longer contribute a result better than the
current k-th answer.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.joins.query_model import JoinResult, SPJRQuery
from repro.joins.rank_stream import RankStream, StreamEntry
from repro.query import QueryResult


class RankJoinExecutor:
    """HRJN-style rank join over an ordered list of rank streams."""

    def __init__(self, query: SPJRQuery, streams: Dict[str, RankStream],
                 order: Optional[Sequence[str]] = None) -> None:
        query.validate()
        self.query = query
        self.streams = dict(streams)
        self.order: List[str] = list(order) if order else [
            term.relation.name for term in query.terms]
        missing = [name for name in self.order if name not in self.streams]
        if missing:
            raise QueryError(f"no rank stream supplied for relations {missing}")
        self._join_dims = self._resolve_join_dims()

    def _resolve_join_dims(self) -> Dict[str, List[Tuple[str, str, str]]]:
        """Per relation: (own join dim, other relation, other join dim)."""
        result: Dict[str, List[Tuple[str, str, str]]] = {name: [] for name in self.order}
        for join in self.query.joins:
            result[join.left_relation].append(
                (join.left_dim, join.right_relation, join.right_dim))
            result[join.right_relation].append(
                (join.right_dim, join.left_relation, join.left_dim))
        return result

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self) -> QueryResult:
        """Run the rank join until the top-k results are guaranteed."""
        start = time.perf_counter()
        iterators = {name: iter(self.streams[name]) for name in self.order}
        exhausted: Set[str] = set()
        # Seen tuples per relation: tid -> score.
        seen: Dict[str, Dict[int, float]] = {name: {} for name in self.order}
        last_score: Dict[str, float] = {name: 0.0 for name in self.order}
        first_score: Dict[str, float] = {}
        results: List[Tuple[float, Tuple[Tuple[str, int], ...]]] = []
        result_keys: Set[Tuple[Tuple[str, int], ...]] = set()
        pulls = 0

        def kth_score() -> float:
            if len(results) < self.query.k:
                return float("inf")
            return results[self.query.k - 1][0]

        def threshold() -> float:
            # Best possible future score: one stream at its last seen score,
            # the others at their first (best) scores.
            if any(name not in first_score for name in self.order):
                return -float("inf")
            best = float("inf")
            for name in self.order:
                if name in exhausted:
                    continue
                candidate = last_score[name] + sum(
                    first_score[other] for other in self.order if other != name)
                best = min(best, candidate)
            if all(name in exhausted for name in self.order):
                return float("inf")
            return best

        def try_join(name: str, entry: StreamEntry) -> None:
            """Join a new arrival against seen tuples of every other relation."""
            partner_lists: List[List[Tuple[int, float]]] = []
            for other in self.order:
                if other == name:
                    continue
                candidates = self._join_partners(name, entry.tid, other, seen[other])
                if not candidates:
                    return
                partner_lists.append([(other, tid, score) for tid, score in candidates])
            for combo in itertools.product(*partner_lists) if partner_lists else [()]:
                tids = {name: entry.tid}
                score = entry.score
                valid = True
                for other, tid, other_score in combo:
                    tids[other] = tid
                    score += other_score
                if len(self.order) > 2 and not self._combo_joins(tids):
                    valid = False
                if not valid:
                    continue
                key = tuple(sorted(tids.items()))
                if key in result_keys:
                    continue
                result_keys.add(key)
                results.append((score, key))
                results.sort(key=lambda pair: pair[0])
                del results[self.query.k:]

        while True:
            progressed = False
            for name in self.order:
                if name in exhausted:
                    continue
                try:
                    entry = next(iterators[name])
                except StopIteration:
                    exhausted.add(name)
                    continue
                progressed = True
                pulls += 1
                seen[name][entry.tid] = entry.score
                last_score[name] = entry.score
                first_score.setdefault(name, entry.score)
                try_join(name, entry)
            if not progressed:
                break
            # Strict halt: a join result tying the k-th score may still win
            # the canonical (score, tid) tie-break.
            if len(results) >= self.query.k and kth_score() < threshold():
                break

        elapsed = time.perf_counter() - start
        top = results[: self.query.k]
        self.last_results = [
            JoinResult(tids=dict(key), score=score) for score, key in top
        ]
        flat_tids = tuple(dict(key)[self.order[0]] for _, key in top)
        return QueryResult(
            tids=flat_tids,
            scores=tuple(score for score, _ in top),
            tuples_evaluated=pulls,
            elapsed_seconds=elapsed,
            extra={"stream_pulls": float(pulls),
                   **{f"pulled_{name}": float(self.streams[name].pulled)
                      for name in self.order}},
        )

    def execute_detailed(self) -> List[JoinResult]:
        """Run the rank join and return full per-relation tid mappings."""
        self.execute()
        return list(self.last_results)

    def brute_force_results(self, limit: int) -> List[Tuple[float, Tuple[Tuple[str, int], ...]]]:
        """Exhaustive nested-loop join oracle (used by the tests)."""
        all_matches: List[Tuple[float, Tuple[Tuple[str, int], ...]]] = []
        per_relation: Dict[str, List[Tuple[int, float]]] = {}
        for term in self.query.terms:
            name = term.relation.name
            tids = term.relation.tids_matching(term.predicate.as_dict)
            per_relation[name] = [(int(t), term.score(int(t))) for t in tids]
        names = [term.relation.name for term in self.query.terms]
        for combo in itertools.product(*(per_relation[n] for n in names)):
            tids = {name: tid for name, (tid, _) in zip(names, combo)}
            if not self._combo_joins(tids):
                continue
            score = sum(score for _, score in combo)
            all_matches.append((score, tuple(sorted(tids.items()))))
        all_matches.sort(key=lambda pair: pair[0])
        return all_matches[:limit]

    # ------------------------------------------------------------------
    # join predicates
    # ------------------------------------------------------------------
    def _join_partners(self, name: str, tid: int, other: str,
                       candidates: Dict[int, float]) -> List[Tuple[int, float]]:
        """Seen tuples of ``other`` that join with tuple ``tid`` of ``name``."""
        conditions = [
            (own_dim, other_dim)
            for own_dim, other_name, other_dim in self._join_dims.get(name, [])
            if other_name == other
        ]
        own_relation = self.query.term_for(name).relation
        other_relation = self.query.term_for(other).relation
        if not conditions:
            return list(candidates.items())
        own_values = own_relation.selection_values(tid)
        matches: List[Tuple[int, float]] = []
        for other_tid, score in candidates.items():
            other_values = other_relation.selection_values(other_tid)
            if all(own_values[a] == other_values[b] for a, b in conditions):
                matches.append((other_tid, score))
        return matches

    def _combo_joins(self, tids: Dict[str, int]) -> bool:
        """Whether a full combination satisfies every join condition."""
        for join in self.query.joins:
            left = self.query.term_for(join.left_relation).relation
            right = self.query.term_for(join.right_relation).relation
            lval = left.selection_values(tids[join.left_relation])[join.left_dim]
            rval = right.selection_values(tids[join.right_relation])[join.right_dim]
            if lval != rval:
                return False
        return True
