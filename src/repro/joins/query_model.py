"""SPJR query model: selection, projection, join and ranking (Section 6.1.1).

A multi-relational ranked query names, for every participating relation, a
boolean predicate over its selection dimensions and a ranking sub-function
over its ranking dimensions; relations are connected by equi-join conditions
on selection attributes; and the overall score of a join result is the sum
of the per-relation sub-scores (a monotone combination, as in rank-join
systems), minimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.functions.base import RankingFunction
from repro.query import Predicate
from repro.storage.table import Relation


@dataclass(frozen=True)
class RelationTerm:
    """One relation's share of an SPJR query."""

    relation: Relation
    predicate: Predicate
    function: Optional[RankingFunction] = None

    def validate(self) -> None:
        """Check the predicate and sub-function against the relation schema."""
        self.predicate.validate(self.relation)
        if self.function is not None:
            for dim in self.function.dims:
                if not self.relation.schema.is_ranking(dim):
                    raise QueryError(
                        f"ranking dimension {dim!r} is not part of relation "
                        f"{self.relation.name}")

    def score(self, tid: int) -> float:
        """Sub-score of one tuple (0 when the relation contributes no ranking)."""
        if self.function is None:
            return 0.0
        return self.function.evaluate_tuple(self.relation, tid)


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join between a selection attribute of two relations."""

    left_relation: str
    left_dim: str
    right_relation: str
    right_dim: str


@dataclass(frozen=True)
class SPJRQuery:
    """A complete select-project-join-rank query."""

    terms: Tuple[RelationTerm, ...]
    joins: Tuple[JoinCondition, ...]
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise QueryError("k must be positive")
        if not self.terms:
            raise QueryError("an SPJR query needs at least one relation term")
        names = [term.relation.name for term in self.terms]
        if len(set(names)) != len(names):
            raise QueryError("relation names must be unique within an SPJR query")

    def validate(self) -> None:
        """Validate every term and join condition."""
        by_name = {term.relation.name: term for term in self.terms}
        for term in self.terms:
            term.validate()
        for join in self.joins:
            for rel_name, dim in ((join.left_relation, join.left_dim),
                                  (join.right_relation, join.right_dim)):
                term = by_name.get(rel_name)
                if term is None:
                    raise QueryError(f"join references unknown relation {rel_name!r}")
                if not term.relation.schema.is_selection(dim):
                    raise QueryError(
                        f"join attribute {dim!r} is not a selection dimension of {rel_name}")

    def term_for(self, relation_name: str) -> RelationTerm:
        """Look up one relation's term by name."""
        for term in self.terms:
            if term.relation.name == relation_name:
                return term
        raise QueryError(f"no term for relation {relation_name!r}")


@dataclass
class JoinResult:
    """One joined answer: the per-relation tids and the combined score."""

    tids: Dict[str, int]
    score: float

    def key(self) -> Tuple[Tuple[str, int], ...]:
        """Hashable identity of the join combination."""
        return tuple(sorted(self.tids.items()))
