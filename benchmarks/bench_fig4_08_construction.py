"""fig4.8: signature-cube construction time vs T.

Regenerates the series of the paper's fig4.8 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch4 import fig4_08_construction_time

from repro.bench.pytest_util import run_experiment


def test_fig4_08_construction(benchmark):
    """Reproduce fig4.8: signature-cube construction time vs T."""
    run_experiment(benchmark, fig4_08_construction_time)
