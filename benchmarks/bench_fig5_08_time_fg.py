"""fig5.8: time vs K for the general function fg.

Regenerates the series of the paper's fig5.8 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_08_time_fg

from repro.bench.pytest_util import run_experiment


def test_fig5_08_time_fg(benchmark):
    """Reproduce fig5.8: time vs K for the general function fg."""
    run_experiment(benchmark, fig5_08_time_fg)
