"""fig3.12: query time vs number of covering fragments.

Regenerates the series of the paper's fig3.12 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_12_covering_fragments

from repro.bench.pytest_util import run_experiment


def test_fig3_12_covering(benchmark):
    """Reproduce fig3.12: query time vs number of covering fragments."""
    run_experiment(benchmark, fig3_12_covering_fragments)
