"""fig5.14: time vs merged R-tree dimensionality.

Regenerates the series of the paper's fig5.14 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_14_rtree_dimensionality

from repro.bench.pytest_util import run_experiment


def test_fig5_14_rtree_dims(benchmark):
    """Reproduce fig5.14: time vs merged R-tree dimensionality."""
    run_experiment(benchmark, fig5_14_rtree_dimensionality)
