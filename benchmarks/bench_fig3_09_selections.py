"""fig3.9: query time vs number of selection conditions.

Regenerates the series of the paper's fig3.9 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_09_selection_conditions

from repro.bench.pytest_util import run_experiment


def test_fig3_09_selections(benchmark):
    """Reproduce fig3.9: query time vs number of selection conditions."""
    run_experiment(benchmark, fig3_09_selection_conditions)
