"""fig5.20: time vs database size T.

Regenerates the series of the paper's fig5.20 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_20_database_size

from repro.bench.pytest_util import run_experiment


def test_fig5_20_dbsize(benchmark):
    """Reproduce fig5.20: time vs database size T."""
    run_experiment(benchmark, fig5_20_database_size)
