"""fig7.6: skyline time vs boolean cardinality.

Regenerates the series of the paper's fig7.6 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_06_cardinality

from repro.bench.pytest_util import run_experiment


def test_fig7_06_cardinality(benchmark):
    """Reproduce fig7.6: skyline time vs boolean cardinality."""
    run_experiment(benchmark, fig7_06_cardinality)
