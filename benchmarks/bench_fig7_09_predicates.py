"""fig7.9: skyline time vs number of boolean predicates.

Regenerates the series of the paper's fig7.9 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_09_boolean_predicates

from repro.bench.pytest_util import run_experiment


def test_fig7_09_predicates(benchmark):
    """Reproduce fig7.9: skyline time vs number of boolean predicates."""
    run_experiment(benchmark, fig7_09_boolean_predicates)
