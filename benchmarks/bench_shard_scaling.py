"""Sharded scatter/gather vs the unsharded scan baseline.

Drives a pruned-predicate workload (every query pins the range-sharding
dimension to one value, so the shard planner prunes all but one shard) and
compares the scatter/gather engine against an unsharded full table scan —
the cost model every index- and shard-based method must beat.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --quick

Exits non-zero when the sharded engine fails to beat the scan baseline on
tuples evaluated (deterministic) or exceeds the wall-clock slack (default
``--time-slack 3.0``: sharded must stay under 3x the scan time; on real
hardware it sits far *below* 1x — the slack only absorbs shared-runner
scheduler jitter so CI flags genuine scatter/gather slowdowns, not noise).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import TableScanTopK  # noqa: E402
from repro.engine import Executor  # noqa: E402
from repro.shard import RangeShardingPolicy, ScatterGatherExecutor, ShardManager  # noqa: E402
from repro.workloads import (  # noqa: E402
    SyntheticSpec,
    generate_relation,
    pruned_predicate_queries,
)


def run_workload(execute, queries) -> tuple:
    """Run every query, returning (results, total tuples evaluated).

    Timing happens around this call in ``main``'s repeat loop.
    """
    results = [execute(q) for q in queries]
    tuples = sum(r.tuples_evaluated for r in results)
    return results, tuples


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count (default: 8, quick: 4)")
    parser.add_argument("--time-slack", type=float, default=3.0,
                        help="fail when sharded time exceeds scan time times "
                             "this factor; sharded normally sits far below "
                             "1x, so 3x trips only on genuine slowdowns, "
                             "not shared-runner scheduler jitter (the "
                             "tuples-evaluated gate stays exact)")
    args = parser.parse_args(argv)

    num_tuples = 12000 if args.quick else 40000
    num_shards = args.shards or (4 if args.quick else 8)
    # Scan and sharded runs interleave inside the repeat loop and each
    # takes its min, so a transient runner stall must hit every sharded
    # repeat (and skip every scan repeat) to distort the comparison.
    repeats = 5

    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=12, seed=42))
    queries = pruned_predicate_queries(relation, "A1", k=10)

    scan = TableScanTopK(relation)
    manager = ShardManager(
        relation, RangeShardingPolicy(relation, "A1", num_shards),
        executor_factory=lambda rel: Executor.for_relation(
            rel, block_size=200, with_signature=False, with_skyline=False))
    sharded = ScatterGatherExecutor(manager)
    # Warm-up builds every consulted shard's stack outside the timed region
    # and fills the result caches exactly once; timed runs then bypass the
    # result cache to measure execution, not memoization.
    sharded.execute_many(queries)

    def scan_all():
        return run_workload(scan.query, queries)

    def sharded_all():
        # Flush scatter-level AND per-shard result caches so the timed run
        # measures real execution, not memoized answers.
        manager.invalidate_caches()
        return run_workload(sharded.execute, queries)

    scan_time, sharded_time = float("inf"), float("inf")
    scan_tuples = sharded_tuples = 0
    shard_results = []
    for _ in range(repeats):
        start = time.perf_counter()
        _, scan_tuples = scan_all()
        scan_time = min(scan_time, time.perf_counter() - start)
        start = time.perf_counter()
        shard_results, sharded_tuples = sharded_all()
        sharded_time = min(sharded_time, time.perf_counter() - start)

    consulted = sum(
        len(r.extra["shards_consulted"].split(","))
        for r in shard_results if r.extra["shards_consulted"] != "-")
    print(f"# shard scaling ({'quick' if args.quick else 'full'} mode)")
    print(f"tuples={num_tuples} shards={num_shards} queries={len(queries)} "
          f"repeats={repeats}")
    print(f"{'engine':<24}{'time (s)':>12}{'tuples evaluated':>20}")
    print(f"{'unsharded scan':<24}{scan_time:>12.4f}{scan_tuples:>20}")
    print(f"{'scatter/gather':<24}{sharded_time:>12.4f}{sharded_tuples:>20}")
    print(f"shards consulted across workload: {consulted} "
          f"of {num_shards * len(queries)} scatter slots "
          f"(speedup {scan_time / max(sharded_time, 1e-9):.1f}x)")

    failures = []
    if sharded_time >= scan_time * args.time_slack:
        failures.append(
            f"sharded time {sharded_time:.4f}s exceeded scan {scan_time:.4f}s "
            f"x slack {args.time_slack:g}")
    if sharded_tuples >= scan_tuples:
        failures.append(
            f"sharded evaluated {sharded_tuples} tuples, scan {scan_tuples}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    sharded.close()
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
