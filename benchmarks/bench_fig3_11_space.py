"""fig3.11: materialized space vs number of selection dimensions.

Regenerates the series of the paper's fig3.11 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_11_space

from repro.bench.pytest_util import run_experiment


def test_fig3_11_space(benchmark):
    """Reproduce fig3.11: materialized space vs number of selection dimensions."""
    run_experiment(benchmark, fig3_11_space)
