"""Concurrent clients through the async service vs one-request-at-a-time.

Drives a repeat-free workload of top-k queries sharing two ranking
functions (see ``distinct_serving_queries`` — no logical repeats, so the
result cache cannot blur the comparison) through the engine twice:

* **serial baseline** — every query executed alone, in submission order,
  the way a service without a request queue would run them;
* **served** — the same queries issued by concurrent clients into a
  :class:`~repro.serve.QueryService`, whose adaptive micro-batcher drains
  them into fused ``execute_many`` ticks.

Both paths must return bit-identical answers; the gates are fusion and
work:

* the service's micro-batcher actually fused concurrent same-function
  clients (``fused_queries > 0``), and
* served execution evaluates **at most half** of the serial path's
  aggregate tuples.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_serving.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import Executor  # noqa: E402
from repro.serve import QueryService, ServiceConfig  # noqa: E402
from repro.workloads import (  # noqa: E402
    SyntheticSpec,
    distinct_serving_queries,
    generate_relation,
)


def build_engine(num_tuples: int):
    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=8, seed=23))
    engine = Executor.for_relation(relation, block_size=200,
                                   with_signature=False, with_skyline=False)
    return relation, engine


def split_clients(queries: List, num_clients: int) -> List[List]:
    """Deal the workload round-robin into per-client streams."""
    streams: List[List] = [[] for _ in range(num_clients)]
    for i, query in enumerate(queries):
        streams[i % num_clients].append(query)
    return streams


async def run_service(engine, streams: List[List], linger: float):
    config = ServiceConfig(
        max_batch_size=sum(len(stream) for stream in streams),
        max_linger=linger)
    service = QueryService(engine, config)
    async with service:
        per_stream = await asyncio.gather(
            *(service.submit_many(stream) for stream in streams))
        snapshot = service.stats_snapshot()
    return per_stream, snapshot


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--tuples", type=int, default=None,
                        help="relation size override (test-suite smoke)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client streams (default: 8)")
    args = parser.parse_args(argv)

    num_tuples = args.tuples or (6000 if args.quick else 20000)
    relation, serial_engine = build_engine(num_tuples)
    _, served_engine = build_engine(num_tuples)
    queries = distinct_serving_queries(relation)
    streams = split_clients(queries, args.clients)

    serial_start = time.perf_counter()
    serial = [serial_engine.execute(query) for query in queries]
    serial_seconds = time.perf_counter() - serial_start

    served_start = time.perf_counter()
    per_stream, snapshot = asyncio.run(
        run_service(served_engine, streams, linger=0.25 if args.quick else 0.1))
    served_seconds = time.perf_counter() - served_start
    served = {id(query): result
              for stream, results in zip(streams, per_stream)
              for query, result in zip(stream, results)}

    failures: List[str] = []
    serial_tuples = 0
    served_tuples = 0
    for i, query in enumerate(queries):
        alone = serial[i]
        batched = served[id(query)]
        if alone.tids != batched.tids or alone.scores != batched.scores:
            failures.append(f"query {i}: served answer differs from serial")
        serial_tuples += alone.tuples_evaluated
        served_tuples += batched.tuples_evaluated

    print(f"# serving micro-batch fusion ({'quick' if args.quick else 'full'} "
          f"mode)")
    print(f"tuples={num_tuples} queries={len(queries)} "
          f"clients={len(streams)}")
    print(f"serial:  {serial_tuples:>8} tuples evaluated "
          f"in {serial_seconds:.3f}s")
    print(f"served:  {served_tuples:>8} tuples evaluated "
          f"in {served_seconds:.3f}s "
          f"(batches={snapshot['batches']:.0f}, "
          f"mean_batch_size={snapshot['mean_batch_size']:.1f})")
    print(f"fused_queries={snapshot['fused_queries']:.0f} "
          f"fused_groups={snapshot['fused_groups']:.0f} "
          f"fusion_rate={snapshot['fusion_rate']:.2f} "
          f"queue_wait_p50={snapshot['queue_wait_p50'] * 1000:.2f}ms")

    if snapshot["fused_queries"] <= 0:
        failures.append("the micro-batcher fused no concurrent queries "
                        "(fused_queries == 0)")
    if served_tuples * 2 > serial_tuples:
        failures.append(
            f"served execution evaluated {served_tuples} tuples in "
            f"aggregate, more than half of the serial path's "
            f"{serial_tuples}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
