"""Calibrate the planner's CostModel constants from measured touch times.

The :class:`~repro.engine.cost.CostModel` prices every backend in
*tuple-score units* using hand-tuned constants (scoring one tuple = 1.0, a
grid block touch = 8.0, an R-tree node touch = 32.0, ...).  This offline
tool measures the real per-tuple, per-row-filter, per-block, per-node, and
per-signature-test times on a synthetic relation and prints a ready-to-use
``CostModel(**constants)`` snippet with each structural constant expressed
as a multiple of the measured per-tuple scoring time.  Nothing is changed
automatically — the stock defaults stay in place until an operator passes
the emitted constants to their executor::

    executor = Executor(cost_model=CostModel(block_touch_cost=...))

Run directly (``--quick`` for a smaller relation)::

    PYTHONPATH=src python benchmarks/calibrate_cost_model.py --quick

With ``--metrics path/to/metrics.json`` the tool additionally reads a
metrics snapshot (e.g. the JSON ``python -m repro serve`` prints on
shutdown, or ``Executor.metrics_snapshot()`` dumped by an operator) and
summarizes the per-backend cost-feedback counters the executor maintains
— which backends' estimates drifted >4x from the tuples actually
evaluated — so calibration effort goes where the production misestimates
are.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.cube import RankingCube  # noqa: E402
from repro.engine.cost import CostModel  # noqa: E402
from repro.functions.linear import LinearFunction  # noqa: E402
from repro.query import Predicate, TopKQuery  # noqa: E402
from repro.signature import SignatureRankingCube  # noqa: E402
from repro.workloads import SyntheticSpec, generate_relation  # noqa: E402


def best_of(repeats: int, measure: Callable[[], float]) -> float:
    """Minimum of ``repeats`` timing samples (noise only ever adds time)."""
    return min(measure() for _ in range(repeats))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller relation for a fast calibration pass")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per probe (minimum is kept)")
    parser.add_argument("--tuples", type=int, default=None,
                        help="relation size override (the test suite smokes "
                             "the tool at tiny N; measured constants are "
                             "only meaningful at the default sizes)")
    parser.add_argument("--metrics", default=None,
                        help="path to a metrics-snapshot JSON (from "
                             "'python -m repro serve' or "
                             "Executor.metrics_snapshot()); summarizes its "
                             "per-backend planner misestimation counters "
                             "before calibrating")
    args = parser.parse_args(argv)

    if args.metrics:
        import json

        from repro.obs import misestimation_report

        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        print(misestimation_report(snapshot))
        print()

    num_tuples = args.tuples or (8000 if args.quick else 40000)
    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=10, seed=31))
    function = LinearFunction(["N1", "N2"], [1.0, 2.0])
    values = relation.ranking_values_bulk(
        np.arange(relation.num_tuples), function.dims)

    # Per-tuple scoring: the model's unit (score_cost = 1.0 by definition).
    # Scored in block-sized batches — that is the granularity the engines
    # actually pay, so the per-call overhead is amortized realistically
    # rather than over the whole relation at once.
    block_size = 200

    def score_pass() -> float:
        start = time.perf_counter()
        for low in range(0, len(values), block_size):
            function.evaluate_batch(values[low:low + block_size])
        return time.perf_counter() - start

    t_score = best_of(args.repeats, score_pass) / relation.num_tuples

    # Per-row predicate filtering (the table scan's 0.02 constant).
    conditions = {"A1": 1}

    def filter_pass() -> float:
        start = time.perf_counter()
        relation.mask_equal(conditions)
        return time.perf_counter() - start

    t_filter = best_of(args.repeats, filter_pass) / relation.num_tuples

    # Per-block touch: what the frontier pays for one block beyond the
    # scoring — deriving the function's lower bound over the block box plus
    # fetching the block's qualifying tid list.
    cube = RankingCube(relation, block_size=block_size)
    bids = cube.block_table.non_empty_bids()
    provider = cube.provider_for(Predicate.of(A1=1))

    def block_pass() -> float:
        provider.reset()
        start = time.perf_counter()
        for bid in bids:
            function.lower_bound(cube.grid.block_box(bid))
            provider.tids_in_block(bid)
        return time.perf_counter() - start

    t_block = best_of(args.repeats, block_pass) / max(1, len(bids))

    # Per-node touch: expanding one R-tree node — reading its page and
    # deriving every child's lower bound (leaf pages read their entries).
    signature = SignatureRankingCube(relation, rtree_max_entries=32)
    rtree = signature.rtree

    def rtree_pass() -> Tuple[float, int]:
        nodes = 0
        start = time.perf_counter()
        pending = [rtree.root()]
        while pending:
            node = pending.pop()
            nodes += 1
            if node.is_leaf:
                for entry in rtree.leaf_entries(node):
                    pass
            else:
                for child in rtree.children(node):
                    function.lower_bound(child.box)
                    pending.append(child)
        return time.perf_counter() - start, nodes

    rtree_samples = [rtree_pass() for _ in range(args.repeats)]
    t_node = min(elapsed / max(1, nodes) for elapsed, nodes in rtree_samples)

    # Per-signature test: reader probes over real leaf-entry paths.
    reader = signature.signature_reader(Predicate.of(A1=1))
    paths = [path for _, path in signature.rtree.iter_tuple_paths()][:2000]

    def signature_pass() -> float:
        start = time.perf_counter()
        for path in paths:
            reader.test(path)
        return time.perf_counter() - start

    t_sig = best_of(args.repeats, signature_pass) / max(1, len(paths))

    constants = {
        "row_filter_cost": t_filter / t_score,
        "block_touch_cost": t_block / t_score,
        "node_touch_cost": t_node / t_score,
        "signature_test_cost": t_sig / t_score,
    }
    defaults = {name: getattr(CostModel, name) for name in constants}

    print(f"# cost-model calibration ({'quick' if args.quick else 'full'} "
          f"mode)")
    print(f"tuples={num_tuples} repeats={args.repeats}")
    print(f"{'probe':<24}{'seconds/op':>14}{'tuple units':>13}{'default':>9}")
    print(f"{'score one tuple':<24}{t_score:>14.3e}{1.0:>13.2f}"
          f"{CostModel.score_cost:>9.2f}")
    for name, probe in (("row_filter_cost", t_filter),
                        ("block_touch_cost", t_block),
                        ("node_touch_cost", t_node),
                        ("signature_test_cost", t_sig)):
        print(f"{name:<24}{probe:>14.3e}{constants[name]:>13.2f}"
              f"{defaults[name]:>9.2f}")
    print()
    print("# measured constants (pass to your executor; defaults unchanged):")
    print("CostModel(")
    for name, value in constants.items():
        print(f"    {name}={value:.3f},")
    print(")")
    # Sanity only — an offline tool must not gate CI on machine speed.
    CostModel(**constants)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
