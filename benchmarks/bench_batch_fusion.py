"""Fused batch execution vs the per-query loop on a shared-function workload.

Drives a batch of top-k queries that reuse a handful of ranking functions
(the workload the ranking cube exists for: many ad-hoc queries over one
structure) through the engine twice: once as a per-query loop and once
through the fused ``execute_many`` path, which groups the batch by
(backend, canonical function key) and answers each group with one frontier
sweep.  Both paths must return bit-identical answers; the gate is work:

* per fused group, the fused sweep never evaluates more tuples than the
  loop spent on the same queries, and
* across the workload, fused execution evaluates **at most half** of the
  loop's aggregate tuples.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_batch_fusion.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import Executor  # noqa: E402
from repro.engine.cache import function_fuse_key  # noqa: E402
from repro.functions.linear import LinearFunction  # noqa: E402
from repro.query import Predicate, TopKQuery  # noqa: E402
from repro.workloads import SyntheticSpec, generate_relation  # noqa: E402


def shared_function_batch(relation) -> List[TopKQuery]:
    """A batch in which many queries share each ranking function.

    Per function: a spread of ``k`` values over the empty predicate (fully
    overlapping tuple sets — the best case for scoring each block once) plus
    selective predicates on different dimensions whose match sets overlap
    the broad queries.
    """
    functions = [
        LinearFunction(["N1", "N2"], [1.0, 2.0]),
        LinearFunction(["N1", "N2"], [3.0, 1.0]),
    ]
    queries: List[TopKQuery] = []
    for function in functions:
        for k in (1, 3, 5, 10, 20, 40):
            queries.append(TopKQuery(Predicate.of(), function, k))
        for value in (0, 1, 2, 3):
            queries.append(TopKQuery(Predicate.of(A1=value), function, 10))
        for value in (0, 1):
            queries.append(TopKQuery(Predicate.of(A2=value), function, 5))
    return queries


def build_engine(num_tuples: int) -> Tuple[object, List[TopKQuery]]:
    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=8, seed=23))
    executor = Executor.for_relation(relation, block_size=200,
                                     with_signature=False, with_skyline=False)
    return executor, shared_function_batch(relation)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    args = parser.parse_args(argv)

    num_tuples = 6000 if args.quick else 20000
    looped_engine, queries = build_engine(num_tuples)
    fused_engine, _ = build_engine(num_tuples)

    looped = [looped_engine.execute(query) for query in queries]
    fused = fused_engine.execute_many(queries)

    failures: List[str] = []
    group_loop: Dict[tuple, int] = {}
    group_fused: Dict[tuple, int] = {}
    print(f"# batch fusion ({'quick' if args.quick else 'full'} mode)")
    print(f"tuples={num_tuples} queries={len(queries)}")
    header = (f"{'#':>3} {'k':>3} {'predicate':<12} {'backend':<14}"
              f"{'loop tuples':>12}{'fused tuples':>13}{'group':>7}")
    print(header)
    for i, (query, alone, batched) in enumerate(zip(queries, looped, fused)):
        if alone.tids != batched.tids or alone.scores != batched.scores:
            failures.append(f"query {i}: fused answer differs from the loop")
        group = (batched.extra.get("backend", "?"),
                 function_fuse_key(query.function))
        group_loop[group] = group_loop.get(group, 0) + alone.tuples_evaluated
        group_fused[group] = group_fused.get(group, 0) + batched.tuples_evaluated
        predicate = ",".join(f"{d}={v}" for d, v in
                             query.predicate.conditions) or "(none)"
        print(f"{i:>3} {query.k:>3} {predicate:<12} "
              f"{batched.extra.get('backend', '?'):<14}"
              f"{alone.tuples_evaluated:>12}{batched.tuples_evaluated:>13}"
              f"{batched.extra.get('fused_group_size', 0.0):>7.0f}")

    loop_total = sum(group_loop.values())
    fused_total = sum(group_fused.values())
    for group, loop_tuples in sorted(group_loop.items(), key=str):
        fused_tuples = group_fused[group]
        print(f"group {group[0]}: loop {loop_tuples}, fused {fused_tuples}")
        if fused_tuples > loop_tuples:
            failures.append(
                f"group {group[0]} evaluated {fused_tuples} tuples fused, "
                f"more than the loop's {loop_tuples}")
    print(f"aggregate tuples evaluated: loop {loop_total}, fused {fused_total}")
    if fused_total * 2 > loop_total:
        failures.append(
            f"fused execution evaluated {fused_total} tuples in aggregate, "
            f"more than half of the loop's {loop_total}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
