"""fig6.4: rank join vs join-then-sort, by relation size.

Regenerates the series of the paper's fig6.4 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch6 import fig6_04_database_size

from repro.bench.pytest_util import run_experiment


def test_fig6_04_dbsize(benchmark):
    """Reproduce fig6.4: rank join vs join-then-sort, by relation size."""
    run_experiment(benchmark, fig6_04_database_size)
