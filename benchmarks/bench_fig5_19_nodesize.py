"""fig5.19: time vs index node fanout.

Regenerates the series of the paper's fig5.19 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_19_node_size

from repro.bench.pytest_util import run_experiment


def test_fig5_19_nodesize(benchmark):
    """Reproduce fig5.19: time vs index node fanout."""
    run_experiment(benchmark, fig5_19_node_size)
