"""fig3.14: query time vs number of selection dimensions S.

Regenerates the series of the paper's fig3.14 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_14_selection_dims

from repro.bench.pytest_util import run_experiment


def test_fig3_14_highdim(benchmark):
    """Reproduce fig3.14: query time vs number of selection dimensions S."""
    run_experiment(benchmark, fig3_14_selection_dims)
