"""fig5.7: time vs K for the semi-monotone function fs.

Regenerates the series of the paper's fig5.7 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_07_time_fs

from repro.bench.pytest_util import run_experiment


def test_fig5_07_time_fs(benchmark):
    """Reproduce fig5.7: time vs K for the semi-monotone function fs."""
    run_experiment(benchmark, fig5_07_time_fs)
