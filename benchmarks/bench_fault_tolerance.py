"""Fault-tolerance benchmark: correctness and latency under injected chaos.

Three passes over one sharded relation:

1. **Baseline** — the workload through a fault-free thread scatter;
   per-query latencies and answers are the reference.
2. **Chaos** — the same workload through an engine wearing a seeded
   :class:`~repro.fault.inject.FaultInjector` (pre/post-leg worker
   crashes and delays) plus a :class:`~repro.fault.retry.RetryPolicy`.
   The fault cap is kept strictly below ``max_attempts - 1``, so
   recovery provably converges for any seed.  Gates:

   * **zero wrong answers** — every chaos answer bit-identical to the
     baseline (the headline claim: fault machinery never changes a
     result);
   * ``fault.retries > 0`` — the chaos actually exercised the recovery
     path (a vacuous pass proves nothing);
   * **bounded degradation** — chaos p99 latency within
     ``--max-p99-ratio`` of the fault-free p99 (with a small absolute
     floor so microsecond baselines don't make the ratio meaningless).

3. **Breaker / degradation** — one shard fails permanently behind a
   3-failure circuit breaker with ``allow_partial=True``.  Gates:
   ``breaker.opened >= 1``, every answer flagged ``degraded`` and
   bit-identical to the brute-force oracle restricted to the surviving
   shards, and post-trip queries fail fast (no attempts against the
   dead shard).

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --quick

Emits ``BENCH_fault.json`` for the CI artifact upload; exits non-zero
when any gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.errors import ShardWorkerError  # noqa: E402
from repro.fault import BreakerPolicy, FaultInjector, RetryPolicy  # noqa: E402
from repro.functions.linear import skewed_linear_function  # noqa: E402
from repro.query import Predicate, TopKQuery  # noqa: E402
from repro.shard import (  # noqa: E402
    HashShardingPolicy,
    ScatterGatherExecutor,
    ShardManager,
)
from repro.workloads import SyntheticSpec, generate_relation  # noqa: E402


def build_workload(relation, num_queries: int) -> List[TopKQuery]:
    """Mixed top-k queries: varying predicates, functions, and k."""
    rng = np.random.default_rng(4242)
    queries = []
    for i in range(num_queries):
        conditions = {}
        if rng.random() < 0.5:
            dim = str(rng.choice(relation.selection_dims))
            column = relation.selection_column(dim)
            conditions[dim] = int(column[rng.integers(0, len(column))])
        dims = list(relation.ranking_dims)
        function = skewed_linear_function(dims, float(rng.uniform(1, 3)),
                                          rng=rng)
        k = int(rng.choice([1, 5, 10, 25]))
        queries.append(TopKQuery(Predicate.of(conditions), function, k))
    return queries


def run_pass(engine, manager, queries) -> tuple:
    """Execute the workload once, cache-flushed; per-query latencies."""
    manager.invalidate_caches()
    latencies = []
    results = []
    for query in queries:
        start = time.perf_counter()
        results.append(engine.execute(query))
        latencies.append(time.perf_counter() - start)
    return results, latencies


def p99(latencies: List[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1,
                       max(0, int(round(0.99 * len(ordered))) - 1))]


def make_manager(relation, num_shards: int) -> ShardManager:
    return ShardManager(relation, HashShardingPolicy(num_shards),
                        block_size=64, with_signature=False,
                        with_skyline=False)


def surviving_oracle(relation, query, surviving_tids):
    """Brute force restricted to the surviving shards' global tids."""
    mask = relation.mask_equal(query.predicate.as_dict)
    scored = sorted(
        (float(query.function.evaluate_tuple(relation, int(tid))), int(tid))
        for tid in np.nonzero(mask)[0] if int(tid) in surviving_tids)
    top = scored[: query.k]
    return tuple(t for _, t in top), tuple(s for s, _ in top)


def fail_shard(engine, bad_index: int) -> None:
    """Make every leg to one shard raise, leaving the others honest."""
    original = engine._shard_execute

    def failing(shard, query, leg, deadline=None):
        if shard.index == bad_index:
            raise ShardWorkerError(
                f"shard {shard.index} worker process died (exit code -9)",
                shard_index=shard.index)
        return original(shard, query, leg, deadline=deadline)

    engine._shard_execute = failing


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--seed", type=int, default=1337,
                        help="fault injector seed (default: 1337)")
    parser.add_argument("--tuples", type=int, default=None,
                        help="relation size override (smoke tests)")
    parser.add_argument("--queries", type=int, default=None,
                        help="workload size override (smoke tests)")
    parser.add_argument("--max-p99-ratio", type=float, default=10.0,
                        help="fail when the chaos pass p99 exceeds this "
                             "multiple of the fault-free p99 (default: 10)")
    parser.add_argument("--output", default="BENCH_fault.json",
                        help="JSON results path (default: BENCH_fault.json)")
    args = parser.parse_args(argv)

    num_tuples = args.tuples or (4000 if args.quick else 20000)
    num_shards = 3 if args.quick else 6
    num_queries = args.queries or (40 if args.quick else 120)
    max_faults = 10 if args.quick else 30

    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=6, seed=4242))
    queries = build_workload(relation, num_queries)
    failures: List[str] = []

    # -- pass 1: fault-free baseline -----------------------------------
    baseline_manager = make_manager(relation, num_shards)
    with ScatterGatherExecutor(baseline_manager) as engine:
        # Warm-up builds the shard stacks outside the timed region.
        engine.execute(queries[0])
        baseline_results, baseline_latencies = run_pass(
            engine, baseline_manager, queries)
    baseline_p99 = p99(baseline_latencies)

    # -- pass 2: chaos with retries ------------------------------------
    chaos_manager = make_manager(relation, num_shards)
    injector = FaultInjector(
        seed=args.seed,
        rates={"worker.crash.pre": 0.15, "worker.crash.post": 0.08,
               "leg.delay": 0.05},
        max_faults=max_faults, delay_seconds=0.0005)
    chaos_engine = ScatterGatherExecutor(
        chaos_manager, fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=max_faults + 2,
                                 base_delay=0.0005, cap_delay=0.002,
                                 budget=None, jitter_seed=args.seed))
    with chaos_engine:
        chaos_engine.execute(queries[0])
        injector.fired = {point: 0 for point in injector.fired}  # warm-up out
        chaos_results, chaos_latencies = run_pass(
            chaos_engine, chaos_manager, queries)
    chaos_snap = chaos_engine.metrics.snapshot()
    chaos_p99 = p99(chaos_latencies)

    wrong = sum(1 for a, b in zip(baseline_results, chaos_results)
                if a.tids != b.tids or a.scores != b.scores)
    if wrong:
        failures.append(f"{wrong}/{num_queries} chaos answers differ from "
                        f"the fault-free baseline (must be zero)")
    if injector.total_fired == 0 or chaos_snap["fault.retries"] == 0:
        failures.append("the chaos pass injected no faults / retried "
                        "nothing — the recovery path went unexercised")
    p99_allowed = max(args.max_p99_ratio * baseline_p99,
                      baseline_p99 + 0.05)
    if chaos_p99 > p99_allowed:
        failures.append(
            f"chaos p99 {chaos_p99 * 1e3:.2f}ms exceeds the allowed "
            f"{p99_allowed * 1e3:.2f}ms "
            f"({args.max_p99_ratio:g}x fault-free p99 "
            f"{baseline_p99 * 1e3:.2f}ms)")

    # -- pass 3: permanent shard loss behind a breaker ------------------
    breaker_manager = make_manager(relation, num_shards)
    breaker_engine = ScatterGatherExecutor(
        breaker_manager, allow_partial=True,
        breaker_policy=BreakerPolicy(failure_threshold=3, cooldown=3600.0))
    fail_shard(breaker_engine, bad_index=0)
    surviving = {int(tid) for shard in breaker_manager.shards
                 if shard.index != 0 for tid in shard.tid_map}
    degraded_wrong = 0
    not_degraded = 0
    with breaker_engine:
        for query in queries:
            result = breaker_engine.execute(query, use_result_cache=False)
            if "degraded" not in result.extra:
                not_degraded += 1
                continue
            tids, scores = surviving_oracle(relation, query, surviving)
            if result.tids != tids or result.scores != scores:
                degraded_wrong += 1
    breaker_snap = breaker_engine.metrics.snapshot()
    if degraded_wrong:
        failures.append(f"{degraded_wrong} degraded answers differ from the "
                        f"surviving-shard oracle")
    if not_degraded:
        failures.append(f"{not_degraded} answers over a dead shard were not "
                        f"flagged degraded")
    if breaker_snap["breaker.opened"] < 1:
        failures.append("the dead shard's circuit breaker never opened")
    if breaker_snap["breaker.rejected"] < 1:
        failures.append("no leg was refused fail-fast by the open breaker")

    report = {
        "mode": "quick" if args.quick else "full",
        "num_tuples": num_tuples,
        "num_shards": num_shards,
        "num_queries": num_queries,
        "seed": args.seed,
        "faults_injected": injector.total_fired,
        "faults_by_point": {point: count
                            for point, count in injector.fired.items()
                            if count},
        "retries": chaos_snap["fault.retries"],
        "wrong_answers": wrong,
        "baseline_p99_ms": baseline_p99 * 1e3,
        "chaos_p99_ms": chaos_p99 * 1e3,
        "max_p99_ratio": args.max_p99_ratio,
        "breaker_opened": breaker_snap["breaker.opened"],
        "breaker_rejected": breaker_snap["breaker.rejected"],
        "degraded_results": breaker_snap["fault.degraded_results"],
        "failures": failures,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    print(f"# fault tolerance ({report['mode']} mode)")
    print(f"tuples={num_tuples} shards={num_shards} queries={num_queries} "
          f"seed={args.seed}")
    print(f"chaos: {injector.total_fired} faults injected "
          f"{report['faults_by_point']}, "
          f"{chaos_snap['fault.retries']:.0f} retries, "
          f"{wrong} wrong answers")
    print(f"latency p99: fault-free {baseline_p99 * 1e3:.2f}ms, "
          f"chaos {chaos_p99 * 1e3:.2f}ms "
          f"(allowed {p99_allowed * 1e3:.2f}ms)")
    print(f"breaker: opened={breaker_snap['breaker.opened']:.0f} "
          f"rejected={breaker_snap['breaker.rejected']:.0f} "
          f"degraded={breaker_snap['fault.degraded_results']:.0f}")
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
