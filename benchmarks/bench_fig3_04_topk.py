"""fig3.4: query time vs k (ranking cube vs rank mapping vs baseline).

Regenerates the series of the paper's fig3.4 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_04_topk

from repro.bench.pytest_util import run_experiment


def test_fig3_04_topk(benchmark):
    """Reproduce fig3.4: query time vs k (ranking cube vs rank mapping vs baseline)."""
    run_experiment(benchmark, fig3_04_topk)
