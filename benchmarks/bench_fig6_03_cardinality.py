"""fig6.3: rank join vs join-then-sort, by join cardinality.

Regenerates the series of the paper's fig6.3 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch6 import fig6_03_cardinality

from repro.bench.pytest_util import run_experiment


def test_fig6_03_cardinality(benchmark):
    """Reproduce fig6.3: rank join vs join-then-sort, by join cardinality."""
    run_experiment(benchmark, fig6_03_cardinality)
