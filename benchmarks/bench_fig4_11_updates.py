"""fig4.11: incremental maintenance cost.

Regenerates the series of the paper's fig4.11 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch4 import fig4_11_incremental_updates

from repro.bench.pytest_util import run_experiment


def test_fig4_11_updates(benchmark):
    """Reproduce fig4.11: incremental maintenance cost."""
    run_experiment(benchmark, fig4_11_incremental_updates)
