"""fig7.13-14: drill-down / roll-up vs fresh queries.

Regenerates the series of the paper's fig7.13-14 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_13_14_olap_navigation

from repro.bench.pytest_util import run_experiment


def test_fig7_13_14_olap(benchmark):
    """Reproduce fig7.13-14: drill-down / roll-up vs fresh queries."""
    run_experiment(benchmark, fig7_13_14_olap_navigation)
