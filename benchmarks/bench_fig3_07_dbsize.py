"""fig3.7: query time vs database size T.

Regenerates the series of the paper's fig3.7 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_07_database_size

from repro.bench.pytest_util import run_experiment


def test_fig3_07_dbsize(benchmark):
    """Reproduce fig3.7: query time vs database size T."""
    run_experiment(benchmark, fig3_07_database_size)
