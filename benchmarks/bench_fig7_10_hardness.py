"""fig7.10: skyline time vs query hardness.

Regenerates the series of the paper's fig7.10 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_10_hardness

from repro.bench.pytest_util import run_experiment


def test_fig7_10_hardness(benchmark):
    """Reproduce fig7.10: skyline time vs query hardness."""
    run_experiment(benchmark, fig7_10_hardness)
