"""fig3.15: query time vs k on the CoverType-like surrogate.

Regenerates the series of the paper's fig3.15 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_15_real_data

from repro.bench.pytest_util import run_experiment


def test_fig3_15_real(benchmark):
    """Reproduce fig3.15: query time vs k on the CoverType-like surrogate."""
    run_experiment(benchmark, fig3_15_real_data)
