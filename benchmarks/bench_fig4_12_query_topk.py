"""fig4.12: query time vs k (Boolean / Ranking / Signature).

Regenerates the series of the paper's fig4.12 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch4 import fig4_12_query_topk

from repro.bench.pytest_util import run_experiment


def test_fig4_12_query_topk(benchmark):
    """Reproduce fig4.12: query time vs k (Boolean / Ranking / Signature)."""
    run_experiment(benchmark, fig4_12_query_topk)
