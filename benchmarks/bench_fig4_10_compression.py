"""fig4.10: signature compression vs cardinality.

Regenerates the series of the paper's fig4.10 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch4 import fig4_10_compression

from repro.bench.pytest_util import run_experiment


def test_fig4_10_compression(benchmark):
    """Reproduce fig4.10: signature compression vs cardinality."""
    run_experiment(benchmark, fig4_10_compression)
