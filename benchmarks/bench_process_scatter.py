"""Process scatter vs thread scatter on a GIL-bound scoring workload.

Drives an unpruned workload (empty predicates, so every query's legs visit
every shard) of heavy frontier sweeps through the same sharded relation
twice — once on the thread-pool :class:`ScatterGatherExecutor`, once on
the :class:`ProcessScatterExecutor` whose legs score in per-shard worker
processes over shared memory — and checks that

* answers are **bit-identical** between the two modes for every query;
* the cost model's crossover actually chose processes for this workload
  (``extra["scatter_mode"] == "processes"``);
* on a multi-core host, process scatter beats thread scatter by the
  ``--min-speedup`` factor (default 1.5x) in wall-clock — the whole point
  of moving the GIL out of the way.

The speedup gate is enforced only when the host exposes at least two
usable cores (a single-core runner cannot express the parallelism being
measured; the run still checks bit-identity and reports the numbers).
Worker spawn happens in a warm-up pass, outside the timed region — the
steady state is what serving sees, and per-query worker spawn would be a
different (and already priced) cost.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_process_scatter.py --quick

Emits ``BENCH_procs.json`` next to the working directory for the CI
artifact upload; exits non-zero on a bit-identity failure, a crossover
mis-pick, or (multi-core only) a missed speedup gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.functions.distance import SquaredDistanceFunction  # noqa: E402
from repro.query import Predicate, TopKQuery  # noqa: E402
from repro.shard import (  # noqa: E402
    HashShardingPolicy,
    ProcessScatterExecutor,
    ScatterGatherExecutor,
    ShardManager,
)
from repro.workloads import SyntheticSpec, generate_relation  # noqa: E402


def usable_cores() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def scoring_workload(relation, num_queries: int, k: int) -> List[TopKQuery]:
    """Empty-predicate distance top-k queries with per-query targets.

    Empty predicates defeat shard pruning (every leg runs — the scatter
    is as wide as it gets) and distinct targets defeat the result caches
    across queries, so the timed work is `num_queries x num_shards` real
    frontier sweeps, the Python-heavy phase processes parallelize.
    """
    dims = list(relation.ranking_dims)
    queries = []
    for i in range(num_queries):
        targets = [0.1 + 0.8 * ((i * 7 + j * 3) % 10) / 10.0
                   for j in range(len(dims))]
        queries.append(TopKQuery(Predicate.of(),
                                 SquaredDistanceFunction(dims, targets), k))
    return queries


def timed_run(engine, manager, queries, repeats: int) -> tuple:
    """Min wall-clock over ``repeats`` cache-flushed workload passes."""
    best = float("inf")
    results: List = []
    for _ in range(repeats):
        # Flush scatter-level, per-shard, AND worker-side result caches so
        # every repeat measures real execution in both modes alike.
        manager.invalidate_caches()
        start = time.perf_counter()
        results = [engine.execute(query) for query in queries]
        best = min(best, time.perf_counter() - start)
    return results, best


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count (default: 8, quick: 4)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail when process scatter is not this many "
                             "times faster than thread scatter (enforced "
                             "only with >= 2 usable cores)")
    parser.add_argument("--output", default="BENCH_procs.json",
                        help="JSON results path (default: BENCH_procs.json)")
    args = parser.parse_args(argv)

    num_tuples = 24000 if args.quick else 80000
    num_shards = args.shards or (4 if args.quick else 8)
    num_queries = 6 if args.quick else 12
    repeats = 3 if args.quick else 5
    cores = usable_cores()

    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=2, num_ranking_dims=3,
        cardinality=8, seed=42))
    # k=100 with tiny blocks makes each leg a multi-millisecond frontier
    # sweep — heavy enough that per-leg pipe IPC (~0.5ms) amortizes and
    # the thread-vs-process contrast measures scoring, not transport.
    queries = scoring_workload(relation, num_queries, k=100)

    # Two independent managers over one relation: neither mode's lazily
    # built stacks, caches, or statistics can leak into the other's run.
    # Tiny blocks + no side indexes keep the legs in the Python-heavy
    # grid frontier sweep — the phase the GIL serializes under threads.
    engine_kwargs = dict(block_size=8, with_signature=False,
                         with_skyline=False)
    threads_manager = ShardManager(relation, HashShardingPolicy(num_shards),
                                   **engine_kwargs)
    process_manager = ShardManager(relation, HashShardingPolicy(num_shards),
                                   **engine_kwargs)
    threads_engine = ScatterGatherExecutor(threads_manager, parallel=True)
    process_engine = ProcessScatterExecutor(process_manager, parallel=True)

    failures: List[str] = []
    with threads_engine, process_engine:
        # Warm-up: build every shard stack / spawn every worker outside
        # the timed region, and verify the crossover picks processes.
        threads_engine.execute(queries[0])
        probe = process_engine.execute(queries[0])
        if probe.extra.get("scatter_mode") != "processes":
            failures.append(
                f"cost crossover kept this workload on threads "
                f"(scatter_mode={probe.extra.get('scatter_mode')!r}); the "
                f"per-shard leg cost should clear process_leg_overhead")

        thread_results, thread_time = timed_run(
            threads_engine, threads_manager, queries, repeats)
        process_results, process_time = timed_run(
            process_engine, process_manager, queries, repeats)

        identical = all(
            a.tids == b.tids and a.scores == b.scores
            for a, b in zip(thread_results, process_results))
        if not identical:
            failures.append("process-scatter answers differ from "
                            "thread-scatter answers (bit-identity broken)")

        speedup = thread_time / max(process_time, 1e-9)
        gate_enforced = cores >= 2
        if gate_enforced and speedup < args.min_speedup:
            failures.append(
                f"process scatter speedup {speedup:.2f}x below the "
                f"{args.min_speedup:g}x gate on {cores} cores")

        workers = process_engine.cache_stats()["shard_workers"]

    report = {
        "mode": "quick" if args.quick else "full",
        "num_tuples": num_tuples,
        "num_shards": num_shards,
        "num_queries": num_queries,
        "repeats": repeats,
        "cores": cores,
        "thread_seconds": thread_time,
        "process_seconds": process_time,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "gate_enforced": gate_enforced,
        "identical": identical,
        "workers": workers,
        "failures": failures,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    print(f"# process scatter ({report['mode']} mode)")
    print(f"tuples={num_tuples} shards={num_shards} queries={num_queries} "
          f"repeats={repeats} cores={cores}")
    print(f"{'engine':<24}{'time (s)':>12}")
    print(f"{'thread scatter':<24}{thread_time:>12.4f}")
    print(f"{'process scatter':<24}{process_time:>12.4f}")
    print(f"speedup {speedup:.2f}x "
          f"(gate {args.min_speedup:g}x "
          f"{'enforced' if gate_enforced else 'not enforced: single core'}); "
          f"bit-identical={identical}; wrote {args.output}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
