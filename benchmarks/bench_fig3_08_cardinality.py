"""fig3.8: query time vs selection cardinality C.

Regenerates the series of the paper's fig3.8 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_08_cardinality

from repro.bench.pytest_util import run_experiment


def test_fig3_08_cardinality(benchmark):
    """Reproduce fig3.8: query time vs selection cardinality C."""
    run_experiment(benchmark, fig3_08_cardinality)
