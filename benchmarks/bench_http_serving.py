"""HTTP serving tier under saturating mixed-priority load: the net gates.

Stands up a real :class:`~repro.net.QueryServer` on an ephemeral TCP
port and drives it with concurrent asyncio clients over actual sockets,
then gates the three acceptance bars of the network tier:

1. **Priority separation** — under saturating load from interactive and
   background clients (more in-flight requests than admission worker
   slots, so the fair-share queue is always backed up), interactive p99
   latency must be **strictly below** background p99: the weighted
   drain demonstrably reorders the backlog.
2. **Rate-limit isolation** — a throttled client (small token bucket)
   hammering the server must see 429 + ``Retry-After`` rejections while
   an unthrottled peer issuing the same traffic sees **zero** — one
   client's bucket never leaks onto another.
3. **Streaming bit-identity** — every streamed query's assembled final
   answer (verified prefixes + final frame) must be bit-identical —
   tids and float scores compared with ``==`` — to the same query
   executed in process on an identical engine.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_http_serving.py --quick

Emits ``BENCH_http.json`` for the CI artifact upload; exits non-zero
when any gate fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.engine import Executor  # noqa: E402
from repro.functions.linear import skewed_linear_function  # noqa: E402
from repro.net import (  # noqa: E402
    AsyncQueryClient,
    NetConfig,
    QueryServer,
    RateLimitedError,
)
from repro.query import Predicate, TopKQuery  # noqa: E402
from repro.serve import QueryService, ServiceConfig  # noqa: E402
from repro.workloads import SyntheticSpec, generate_relation  # noqa: E402


def build_engine(num_tuples: int):
    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=8, seed=61))
    engine = Executor.for_relation(relation, block_size=200,
                                   with_signature=False, with_skyline=False)
    return relation, engine


def build_workload(relation, num_queries: int, seed: int) -> List[TopKQuery]:
    """Distinct mixed queries (fresh function objects defeat the caches)."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        conditions = {}
        if rng.random() < 0.6:
            dim = str(rng.choice(relation.selection_dims))
            column = relation.selection_column(dim)
            conditions[dim] = int(column[rng.integers(0, len(column))])
        function = skewed_linear_function(list(relation.ranking_dims),
                                          float(rng.uniform(1, 3)), rng=rng)
        k = int(rng.choice([3, 5, 10, 20]))
        queries.append(TopKQuery(Predicate.of(conditions), function, k))
    return queries


def percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


async def drive_priorities(server, relation, per_class: int):
    """Saturating mixed-priority load; returns per-class latency lists."""

    async def one_client(priority: str, seed: int) -> List[float]:
        client = AsyncQueryClient("127.0.0.1", server.port,
                                  client_id=f"{priority}-{seed}",
                                  priority=priority)
        latencies = []
        for query in build_workload(relation, per_class, seed):
            started = time.perf_counter()
            await client.query(query)
            latencies.append(time.perf_counter() - started)
        return latencies

    # 3 clients per class, all started together: with concurrency=2
    # admission slots, the fair-share queue stays saturated throughout.
    interactive, background = [], []
    results = await asyncio.gather(
        *(one_client("interactive", 100 + i) for i in range(3)),
        *(one_client("background", 200 + i) for i in range(3)))
    for latencies in results[:3]:
        interactive.extend(latencies)
    for latencies in results[3:]:
        background.extend(latencies)
    return interactive, background


async def drive_rate_limits(server, relation, requests: int):
    """A throttled and an unthrottled client issue identical traffic."""
    server.limiter.configure("throttled", rate=2.0, burst=3.0)
    queries = build_workload(relation, requests, seed=77)

    async def hammer(client_id: str):
        client = AsyncQueryClient("127.0.0.1", server.port,
                                  client_id=client_id)
        served = bounced = 0
        retry_after = None
        for query in queries:
            try:
                await client.query(query)
                served += 1
            except RateLimitedError as exc:
                bounced += 1
                retry_after = exc.retry_after
        return served, bounced, retry_after

    throttled, unthrottled = await asyncio.gather(
        hammer("throttled"), hammer("unthrottled"))
    return throttled, unthrottled


async def drive_streams(server, queries, reference):
    """Stream every query and compare the assembled finals to reference."""
    client = AsyncQueryClient("127.0.0.1", server.port, client_id="stream")
    mismatches = 0
    prefixes = 0
    for query, expected in zip(queries, reference):
        result, pairs = await client.stream(query)
        prefixes += len(pairs)
        if result.tids != expected.tids or result.scores != expected.scores:
            mismatches += 1
    return mismatches, prefixes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--tuples", type=int, default=None,
                        help="relation size override (test-suite smoke)")
    parser.add_argument("--per-class", type=int, default=None,
                        help="queries per client in the priority pass")
    parser.add_argument("--output", default="BENCH_http.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    num_tuples = args.tuples or (5000 if args.quick else 20000)
    per_class = args.per_class or (12 if args.quick else 40)
    relation, engine = build_engine(num_tuples)
    _, twin = build_engine(num_tuples)  # in-process reference, cold caches
    stream_queries = build_workload(relation, 8 if args.quick else 24,
                                    seed=303)
    stream_reference = [twin.execute(query) for query in stream_queries]

    async def run_all():
        # Tight engine concurrency + 2 admission slots: the backlog
        # lives in the fair-share queue, where ordering is
        # priority-aware — the setup the separation gate measures.
        service_config = ServiceConfig(max_batch_size=16, max_linger=0.002,
                                       engine_concurrency=2)
        net_config = NetConfig(concurrency=2, max_pending=4096)
        async with QueryService(engine, service_config) as service:
            async with QueryServer(service, net_config) as server:
                interactive, background = await drive_priorities(
                    server, relation, per_class)
                throttled, unthrottled = await drive_rate_limits(
                    server, relation, 10 if args.quick else 30)
                mismatches, prefixes = await drive_streams(
                    server, stream_queries, stream_reference)
                metrics = service.metrics.snapshot()
        return (interactive, background, throttled, unthrottled,
                mismatches, prefixes, metrics)

    started = time.perf_counter()
    (interactive, background, throttled, unthrottled,
     mismatches, prefixes, metrics) = asyncio.run(run_all())
    elapsed = time.perf_counter() - started

    interactive_p99 = percentile(interactive, 99)
    background_p99 = percentile(background, 99)
    served, bounced, retry_after = throttled
    free_served, free_bounced, _ = unthrottled

    report = {
        "mode": "quick" if args.quick else "full",
        "tuples": num_tuples,
        "per_class": per_class,
        "elapsed_seconds": elapsed,
        "interactive_p50": percentile(interactive, 50),
        "interactive_p99": interactive_p99,
        "background_p50": percentile(background, 50),
        "background_p99": background_p99,
        "throttled_served": served,
        "throttled_bounced": bounced,
        "throttled_retry_after": retry_after,
        "unthrottled_served": free_served,
        "unthrottled_bounced": free_bounced,
        "stream_queries": len(stream_queries),
        "stream_mismatches": mismatches,
        "stream_prefix_pairs": prefixes,
        "net_requests": metrics.get("net.requests", 0.0),
        "net_rate_limited": metrics.get("net.rate_limited", 0.0),
    }

    print(f"# HTTP serving tier ({report['mode']} mode)")
    print(f"tuples={num_tuples} per_class_queries={per_class} "
          f"wall={elapsed:.2f}s")
    print(f"interactive: p50={report['interactive_p50'] * 1000:.1f}ms "
          f"p99={interactive_p99 * 1000:.1f}ms "
          f"({len(interactive)} requests)")
    print(f"background:  p50={report['background_p50'] * 1000:.1f}ms "
          f"p99={background_p99 * 1000:.1f}ms "
          f"({len(background)} requests)")
    print(f"throttled client: {served} served, {bounced} x 429 "
          f"(Retry-After ~ {retry_after if retry_after else 0:.2f}s); "
          f"unthrottled peer: {free_served} served, {free_bounced} x 429")
    print(f"streams: {len(stream_queries)} queries, "
          f"{prefixes} verified prefix pairs, {mismatches} mismatches")

    failures: List[str] = []
    if not interactive_p99 < background_p99:
        failures.append(
            f"interactive p99 ({interactive_p99 * 1000:.1f}ms) is not "
            f"strictly below background p99 "
            f"({background_p99 * 1000:.1f}ms) under saturating load")
    if bounced <= 0 or retry_after is None or retry_after <= 0:
        failures.append("the throttled client was never rate limited "
                        "(gate needs 429s with a positive Retry-After)")
    if free_bounced > 0:
        failures.append(f"the unthrottled client saw {free_bounced} "
                        f"spurious 429s")
    if mismatches > 0:
        failures.append(f"{mismatches} streamed finals differ from the "
                        f"in-process answers (bit-identity gate)")

    report["failures"] = failures
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
