"""fig7.11: static vs dynamic skylines.

Regenerates the series of the paper's fig7.11 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_11_predicate_types

from repro.bench.pytest_util import run_experiment


def test_fig7_11_booltypes(benchmark):
    """Reproduce fig7.11: static vs dynamic skylines."""
    run_experiment(benchmark, fig7_11_predicate_types)
