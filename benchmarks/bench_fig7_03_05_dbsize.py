"""fig7.3-5: skyline time / disk / heap vs T.

Regenerates the series of the paper's fig7.3-5 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_03_05_database_size

from repro.bench.pytest_util import run_experiment


def test_fig7_03_05_dbsize(benchmark):
    """Reproduce fig7.3-5: skyline time / disk / heap vs T."""
    run_experiment(benchmark, fig7_03_05_database_size)
