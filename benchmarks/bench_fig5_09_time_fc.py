"""fig5.9: time vs K for the constrained function fc.

Regenerates the series of the paper's fig5.9 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_09_time_fc

from repro.bench.pytest_util import run_experiment


def test_fig5_09_time_fc(benchmark):
    """Reproduce fig5.9: time vs K for the constrained function fc."""
    run_experiment(benchmark, fig5_09_time_fc)
