"""fig5.13: time vs K on the CoverType-like surrogate.

Regenerates the series of the paper's fig5.13 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_13_real_data

from repro.bench.pytest_util import run_experiment


def test_fig5_13_real(benchmark):
    """Reproduce fig5.13: time vs K on the CoverType-like surrogate."""
    run_experiment(benchmark, fig5_13_real_data)
