"""fig5.15: 3-way merge: time vs K.

Regenerates the series of the paper's fig5.15 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_15_three_way_time

from repro.bench.pytest_util import run_experiment


def test_fig5_15_threeway_time(benchmark):
    """Reproduce fig5.15: 3-way merge: time vs K."""
    run_experiment(benchmark, fig5_15_three_way_time)
