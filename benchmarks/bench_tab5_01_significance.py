"""tab5.1: basic vs improved index merge (states, disk).

Regenerates the series of the paper's tab5.1 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import tab5_01_significance

from repro.bench.pytest_util import run_experiment


def test_tab5_01_significance(benchmark):
    """Reproduce tab5.1: basic vs improved index merge (states, disk)."""
    run_experiment(benchmark, tab5_01_significance)
