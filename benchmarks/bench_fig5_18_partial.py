"""fig5.18: partial attributes in the ranking function.

Regenerates the series of the paper's fig5.18 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_18_partial_attributes

from repro.bench.pytest_util import run_experiment


def test_fig5_18_partial(benchmark):
    """Reproduce fig5.18: partial attributes in the ranking function."""
    run_experiment(benchmark, fig5_18_partial_attributes)
