"""fig7.8: skyline time vs preference dimensionality.

Regenerates the series of the paper's fig7.8 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_08_preference_dims

from repro.bench.pytest_util import run_experiment


def test_fig7_08_prefdims(benchmark):
    """Reproduce fig7.8: skyline time vs preference dimensionality."""
    run_experiment(benchmark, fig7_08_preference_dims)
