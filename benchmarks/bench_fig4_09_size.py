"""fig4.9: materialized sizes vs T.

Regenerates the series of the paper's fig4.9 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch4 import fig4_09_materialized_size

from repro.bench.pytest_util import run_experiment


def test_fig4_09_size(benchmark):
    """Reproduce fig4.9: materialized sizes vs T."""
    run_experiment(benchmark, fig4_09_materialized_size)
