"""fig7.7: skyline time vs data distribution.

Regenerates the series of the paper's fig7.7 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_07_distribution

from repro.bench.pytest_util import run_experiment


def test_fig7_07_distribution(benchmark):
    """Reproduce fig7.7: skyline time vs data distribution."""
    run_experiment(benchmark, fig7_07_distribution)
