"""fig4.13: disk accesses per ranking-function type.

Regenerates the series of the paper's fig4.13 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch4 import fig4_13_disk_by_function

from repro.bench.pytest_util import run_experiment


def test_fig4_13_functions(benchmark):
    """Reproduce fig4.13: disk accesses per ranking-function type."""
    run_experiment(benchmark, fig4_13_disk_by_function)
