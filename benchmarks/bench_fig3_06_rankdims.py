"""fig3.6: query time vs dims in the ranking function.

Regenerates the series of the paper's fig3.6 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_06_ranking_dims

from repro.bench.pytest_util import run_experiment


def test_fig3_06_rankdims(benchmark):
    """Reproduce fig3.6: query time vs dims in the ranking function."""
    run_experiment(benchmark, fig3_06_ranking_dims)
