"""fig5.17: 3-way merge: disk accesses vs K.

Regenerates the series of the paper's fig5.17 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_17_three_way_disk

from repro.bench.pytest_util import run_experiment


def test_fig5_17_threeway_disk(benchmark):
    """Reproduce fig5.17: 3-way merge: disk accesses vs K."""
    run_experiment(benchmark, fig5_17_three_way_disk)
