"""fig5.16: 3-way merge: peak heap vs K.

Regenerates the series of the paper's fig5.16 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_16_three_way_heap

from repro.bench.pytest_util import run_experiment


def test_fig5_16_threeway_heap(benchmark):
    """Reproduce fig5.16: 3-way merge: peak heap vs K."""
    run_experiment(benchmark, fig5_16_three_way_heap)
