"""fig3.10: ranking-cube query time vs base block size.

Regenerates the series of the paper's fig3.10 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_10_block_size

from repro.bench.pytest_util import run_experiment


def test_fig3_10_blocksize(benchmark):
    """Reproduce fig3.10: ranking-cube query time vs base block size."""
    run_experiment(benchmark, fig3_10_block_size)
