"""fig3.13: query time vs fragment size F.

Regenerates the series of the paper's fig3.13 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_13_fragment_size

from repro.bench.pytest_util import run_experiment


def test_fig3_13_fragsize(benchmark):
    """Reproduce fig3.13: query time vs fragment size F."""
    run_experiment(benchmark, fig3_13_fragment_size)
