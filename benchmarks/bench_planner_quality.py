"""Cost-based vs static backend routing on a skewed top-k workload.

Drives :func:`repro.workloads.skewed_planner_workload` — a deliberate mix
of broad, selective, and provably-absent predicates under skewed linear
functions — through the same engine stack twice: once with the
statistics-driven cost-based planner (the default) and once with the
legacy static (priority, name) order.  Both routings must return
bit-identical answers; the gate is efficiency:

* on **every** query, the cost-chosen backend evaluates at most as many
  tuples as the statically-chosen one, and
* across the workload, the cost-based routing evaluates **strictly
  fewer** tuples in aggregate.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_planner_quality.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import Executor, MODE_STATIC, Planner  # noqa: E402
from repro.workloads import (  # noqa: E402
    SyntheticSpec,
    generate_relation,
    skewed_planner_workload,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    args = parser.parse_args(argv)

    num_tuples = 8000 if args.quick else 24000
    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=12, seed=17))
    executor = Executor.for_relation(relation, block_size=250,
                                     with_skyline=False)
    cost_planner = executor.planner
    static_planner = Planner(executor.registry, mode=MODE_STATIC)
    queries = skewed_planner_workload(relation, seed=29,
                                      count=24 if args.quick else 36)

    header = (f"{'#':>3} {'k':>3} {'predicate':<16} {'cost choice':<16}"
              f"{'static choice':<16}{'cost tuples':>12}{'static tuples':>14}")
    print(f"# planner quality ({'quick' if args.quick else 'full'} mode)")
    print(f"tuples={num_tuples} queries={len(queries)}")
    print(header)

    failures: List[str] = []
    cost_total = static_total = 0
    for i, query in enumerate(queries):
        cost_plan = cost_planner.plan(query)
        static_plan = static_planner.plan(query)
        cost_result = executor.registry.get(cost_plan.backend).run(query)
        static_result = executor.registry.get(static_plan.backend).run(query)
        if (cost_result.tids != static_result.tids
                or cost_result.scores != static_result.scores):
            failures.append(f"query {i}: routings disagree on the answer "
                            f"({cost_plan.backend} vs {static_plan.backend})")
        cost_total += cost_result.tuples_evaluated
        static_total += static_result.tuples_evaluated
        predicate = ",".join(f"{d}={v}" for d, v in
                             query.predicate.conditions) or "(none)"
        print(f"{i:>3} {query.k:>3} {predicate:<16} "
              f"{cost_plan.backend:<16}{static_plan.backend:<16}"
              f"{cost_result.tuples_evaluated:>12}"
              f"{static_result.tuples_evaluated:>14}")
        if cost_result.tuples_evaluated > static_result.tuples_evaluated:
            failures.append(
                f"query {i}: cost routing evaluated "
                f"{cost_result.tuples_evaluated} tuples via "
                f"{cost_plan.backend}, static {static_result.tuples_evaluated} "
                f"via {static_plan.backend}")
    print(f"aggregate tuples evaluated: cost-based {cost_total}, "
          f"static {static_total}")
    if cost_total >= static_total:
        failures.append(
            f"cost routing evaluated {cost_total} tuples in aggregate, "
            f"static {static_total}: no strict improvement")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
