"""Enabled-tracing overhead gate: traced execution must stay within 5%.

The observability contract (see ``docs/observability.md``) is two-sided:
a *disabled* tracer is a no-op object adding zero allocations (pinned by
``tests/test_obs.py``), and an *enabled* tracer must cost less than 5%
wall clock on a real query workload — otherwise nobody would dare leave
it on in production.  This benchmark proves the second half:

* **one** engine, its tracer swapped between the null object and a live
  :class:`~repro.obs.Tracer` per timed pass (one engine, not two: a
  second engine object differs in allocation layout and cache warmth,
  and that variance would be misattributed to tracing);
* the same repeat-free top-k workload in every pass, single-query
  ``execute`` and fused ``execute_many`` alike, result caches
  invalidated inside the pass so the traced paths do real work;
* paired timing: each repeat runs an untraced pass and a traced pass
  back to back, so both sit in the same noise regime (CPU frequency,
  background load), and the gate takes the **minimum traced/untraced
  ratio across repeats** — a genuine overhead inflates every pair, while
  a noise burst inflates only the pairs it hits.

Gates: traced and untraced execution return bit-identical answers, the
live tracer actually recorded traces, and
``traced <= untraced * (1 + limit)`` with ``limit`` defaulting to 0.05.
Results land in ``BENCH_obs.json``.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import Executor  # noqa: E402
from repro.obs import NULL_TRACER, Tracer  # noqa: E402
from repro.workloads import (  # noqa: E402
    SyntheticSpec,
    distinct_serving_queries,
    generate_relation,
)


def build_engine(num_tuples: int):
    relation = generate_relation(SyntheticSpec(
        num_tuples=num_tuples, num_selection_dims=3, num_ranking_dims=2,
        cardinality=8, seed=23))
    engine = Executor.for_relation(relation, block_size=200,
                                   with_signature=False, with_skyline=False)
    return relation, engine


def run_pass(engine, queries: List, rounds: int) -> float:
    """One timed pass: every query solo, then the whole batch fused.

    ``rounds`` repetitions (result caches invalidated between them, so
    every round does real planning and execution) stretch the timed
    region well past scheduler-jitter granularity — the per-pass noise
    is what the 5% gate has to be robust against.
    """
    start = time.perf_counter()
    for _ in range(rounds):
        engine.invalidate_results()
        for query in queries:
            engine.execute(query)
        engine.invalidate_results()
        engine.execute_many(queries)
    return time.perf_counter() - start


def answers(engine, queries: List):
    engine.invalidate_results()
    solo = [(r.tids, r.scores) for r in map(engine.execute, queries)]
    engine.invalidate_results()
    fused = [(r.tids, r.scores) for r in engine.execute_many(queries)]
    return solo + fused


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--tuples", type=int, default=None,
                        help="relation size override (test-suite smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats; the minimum is reported")
    parser.add_argument("--limit", type=float, default=0.05,
                        help="maximum tolerated traced/untraced overhead "
                             "(default: 0.05 = 5%%)")
    parser.add_argument("--output", default=None,
                        help="where to write the JSON result "
                             "(default: BENCH_obs.json in the working "
                             "directory)")
    args = parser.parse_args(argv)

    num_tuples = args.tuples or (6000 if args.quick else 20000)
    repeats = args.repeats or (7 if args.quick else 9)
    rounds = 3 if args.quick else 2
    relation, engine = build_engine(num_tuples)
    # The live tracer records every span of the traced passes; recording
    # into the engine's metrics registry is part of both baselines.
    tracer = Tracer(ring_size=64, slow_threshold=10.0)
    queries = distinct_serving_queries(relation)

    failures: List[str] = []
    engine.tracer = NULL_TRACER
    untraced_answers = answers(engine, queries)
    engine.tracer = tracer
    if answers(engine, queries) != untraced_answers:
        failures.append("traced execution changed an answer")

    plain_times: List[float] = []
    traced_times: List[float] = []
    for _ in range(repeats):
        engine.tracer = NULL_TRACER
        plain_times.append(run_pass(engine, queries, rounds))
        engine.tracer = tracer
        traced_times.append(run_pass(engine, queries, rounds))
    untraced_seconds = min(plain_times)
    traced_seconds = min(traced_times)
    ratios = [t / u for u, t in zip(plain_times, traced_times)]
    overhead = min(ratios) - 1.0

    if tracer.traces_recorded <= 0:
        failures.append("the traced passes recorded no traces")
    snap = engine.metrics_snapshot()
    if snap.get("engine.queries", 0.0) <= 0:
        failures.append("the engine's metrics registry is empty")
    if overhead > args.limit:
        failures.append(
            f"enabled tracing costs {overhead * 100:.1f}% in its best "
            f"pair (limit {args.limit * 100:.1f}%): "
            f"traced {traced_seconds:.4f}s vs untraced "
            f"{untraced_seconds:.4f}s")

    print(f"# enabled-tracing overhead "
          f"({'quick' if args.quick else 'full'} mode)")
    print(f"tuples={num_tuples} queries={len(queries)} repeats={repeats}")
    print(f"untraced: {untraced_seconds:.4f}s (min of {repeats})")
    print(f"traced:   {traced_seconds:.4f}s "
          f"(min of {repeats}, {tracer.traces_recorded} traces)")
    print(f"overhead: {overhead * 100:+.2f}% "
          f"(best of {repeats} paired ratios; limit "
          f"{args.limit * 100:.1f}%)")

    output = args.output or "BENCH_obs.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump({
            "benchmark": "obs_overhead",
            "mode": "quick" if args.quick else "full",
            "tuples": num_tuples,
            "queries": len(queries),
            "repeats": repeats,
            "untraced_seconds": untraced_seconds,
            "traced_seconds": traced_seconds,
            "overhead_ratio": overhead,
            "limit": args.limit,
            "traces_recorded": tracer.traces_recorded,
            "passed": not failures,
        }, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
