"""fig3.5: query time vs query skewness u.

Regenerates the series of the paper's fig3.5 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch3 import fig3_05_skewness

from repro.bench.pytest_util import run_experiment


def test_fig3_05_skew(benchmark):
    """Reproduce fig3.5: query time vs query skewness u."""
    run_experiment(benchmark, fig3_05_skewness)
