"""fig5.11: states generated per function at k=100.

Regenerates the series of the paper's fig5.11 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_11_states_by_function

from repro.bench.pytest_util import run_experiment


def test_fig5_11_states(benchmark):
    """Reproduce fig5.11: states generated per function at k=100."""
    run_experiment(benchmark, fig5_11_states_by_function)
