"""fig7.12: signature loading vs total query cost.

Regenerates the series of the paper's fig7.12 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch7 import fig7_12_breakdown

from repro.bench.pytest_util import run_experiment


def test_fig7_12_breakdown(benchmark):
    """Reproduce fig7.12: signature loading vs total query cost."""
    run_experiment(benchmark, fig7_12_breakdown)
