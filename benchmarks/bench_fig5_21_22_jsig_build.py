"""fig5.21-22: join-signature construction time and size vs T.

Regenerates the series of the paper's fig5.21-22 using the scaled-down default
workload (set ``REPRO_BENCH_SCALE=paper`` for paper-scale sizes).
"""

from repro.bench.ch5 import fig5_21_22_join_signature_build

from repro.bench.pytest_util import run_experiment


def test_fig5_21_22_jsig_build(benchmark):
    """Reproduce fig5.21-22: join-signature construction time and size vs T."""
    run_experiment(benchmark, fig5_21_22_join_signature_build)
